#pragma once
// Principal component analysis over covariance matrices (paper §3.1).
//
// EffiTest decomposes each path group's delay covariance into principal
// components; only the PCs carry correlation information, so the number of
// paths worth testing in a group equals the number of significant PCs, and
// the representative paths are the ones with the largest loading per PC.

#include <cstddef>
#include <vector>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace effitest::stats {

struct Pca {
  /// Eigenvalues (variances along components), descending.
  std::vector<double> component_variance;
  /// Column j = unit eigenvector of component j (n x n).
  linalg::Matrix components;

  /// Number of leading components needed to explain `coverage` in (0,1] of
  /// the total variance (at least 1 for non-empty input).
  [[nodiscard]] std::size_t significant_components(double coverage) const;

  /// Kaiser-style criterion: components whose eigenvalue reaches `scale`
  /// times the average eigenvalue (the white-noise floor). Unlike the
  /// coverage rule this is stable under group size and under uniform
  /// independent-variance inflation (the Fig.-7 protocol): shared factor
  /// directions stay above the floor, per-path noise stays below it.
  /// Returns at least 1 for non-empty input.
  [[nodiscard]] std::size_t significant_by_kaiser(double scale = 1.0) const;

  /// |loading| of variable `var` on component `comp`.
  [[nodiscard]] double loading(std::size_t var, std::size_t comp) const {
    return components(var, comp);
  }
};

/// PCA of a covariance matrix (symmetric PSD expected; asymmetry is averaged
/// away before decomposition).
[[nodiscard]] Pca pca_from_covariance(linalg::Matrix cov);

/// Greedy representative selection used by Procedure 1 / ref. [14]:
/// for each of the first `num_components` PCs in order, pick the not-yet-
/// selected variable with the largest |loading| on that PC.
/// Returns selected variable indices (size == num_components, unless fewer
/// variables exist).
[[nodiscard]] std::vector<std::size_t> select_representatives(
    const Pca& pca, std::size_t num_components);

}  // namespace effitest::stats
