#pragma once
// Deterministic random-number generation.
//
// Every stochastic component of the reproduction (process-variation factors,
// simulated dies, hold-time scenario sampling) draws from this wrapper so
// that experiments are reproducible from a single seed.

#include <cstdint>
#include <random>

namespace effitest::stats {

/// Seeded pseudo-random generator (mt19937_64) with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Standard normal draw.
  [[nodiscard]] double normal() { return normal_(engine_); }

  /// Normal draw with given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() { return uniform_(engine_); }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform_(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Derive an independent child generator (useful for per-chip streams).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace effitest::stats
