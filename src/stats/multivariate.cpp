#include "stats/multivariate.hpp"

#include <cmath>
#include <stdexcept>

namespace effitest::stats {

MultivariateNormal::MultivariateNormal(std::vector<double> mean,
                                       const linalg::Matrix& cov,
                                       double jitter)
    : mean_(std::move(mean)), chol_(linalg::cholesky(cov, jitter)) {
  if (cov.rows() != mean_.size()) {
    throw std::invalid_argument("MultivariateNormal: mean/cov size mismatch");
  }
}

std::vector<double> MultivariateNormal::sample(Rng& rng) const {
  const std::size_t n = mean_.size();
  std::vector<double> z(n);
  for (double& v : z) v = rng.normal();
  std::vector<double> out = mean_;
  const linalg::Matrix& l = chol_.l;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += l(i, k) * z[k];
    out[i] += acc;
  }
  return out;
}

linalg::Matrix MultivariateNormal::sample_many(Rng& rng,
                                               std::size_t count) const {
  linalg::Matrix out(count, mean_.size());
  for (std::size_t r = 0; r < count; ++r) {
    const std::vector<double> s = sample(rng);
    for (std::size_t c = 0; c < s.size(); ++c) out(r, c) = s[c];
  }
  return out;
}

linalg::Matrix sample_covariance(const linalg::Matrix& rows) {
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  if (n < 2) throw std::invalid_argument("sample_covariance needs >= 2 rows");
  std::vector<double> mu(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mu[c] += rows(r, c);
  }
  for (double& v : mu) v /= static_cast<double>(n);
  linalg::Matrix cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      const double di = rows(r, i) - mu[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += di * (rows(r, j) - mu[j]);
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) *= scale;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

linalg::Matrix covariance_to_correlation(const linalg::Matrix& cov) {
  if (!cov.is_square()) {
    throw std::invalid_argument("covariance_to_correlation: square required");
  }
  const std::size_t n = cov.rows();
  linalg::Matrix corr(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double si = std::sqrt(cov(i, i));
    for (std::size_t j = 0; j < n; ++j) {
      const double sj = std::sqrt(cov(j, j));
      corr(i, j) = (si > 0.0 && sj > 0.0) ? cov(i, j) / (si * sj)
                                          : (i == j ? 1.0 : 0.0);
    }
  }
  return corr;
}

}  // namespace effitest::stats
