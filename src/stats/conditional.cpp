#include "stats/conditional.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/decomposition.hpp"

namespace effitest::stats {

ConditionalGaussian::ConditionalGaussian(const linalg::Matrix& cov,
                                         std::vector<std::size_t> measured,
                                         double jitter)
    : measured_(std::move(measured)) {
  const std::size_t n = cov.rows();
  if (!cov.is_square()) {
    throw std::invalid_argument("ConditionalGaussian: covariance not square");
  }
  std::vector<bool> is_measured(n, false);
  for (std::size_t idx : measured_) {
    if (idx >= n) {
      throw std::invalid_argument("ConditionalGaussian: index out of range");
    }
    if (is_measured[idx]) {
      throw std::invalid_argument("ConditionalGaussian: duplicate index");
    }
    is_measured[idx] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_measured[i]) predicted_.push_back(i);
  }

  const std::size_t nt = measured_.size();
  const std::size_t nk = predicted_.size();

  // Sigma_t (measured block) and Sigma_{k,t} (cross block).
  const linalg::Matrix sigma_t = cov.select(measured_, measured_);
  const linalg::Matrix sigma_kt = cov.select(predicted_, measured_);

  if (nt == 0) {
    // Degenerate: nothing measured; posterior equals prior.
    gain_ = linalg::Matrix(nk, 0);
    posterior_sigma_.resize(nk);
    for (std::size_t k = 0; k < nk; ++k) {
      posterior_sigma_[k] = std::sqrt(std::max(cov(predicted_[k], predicted_[k]), 0.0));
    }
    return;
  }

  // W = Sigma_{k,t} Sigma_t^{-1}  computed as solving Sigma_t W^T = Sigma_{t,k}.
  const linalg::Cholesky chol = linalg::cholesky(sigma_t, jitter);
  const linalg::Matrix wt = chol.solve(sigma_kt.transposed());  // nt x nk
  gain_ = wt.transposed();                                      // nk x nt

  posterior_sigma_.resize(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    double reduction = 0.0;
    for (std::size_t t = 0; t < nt; ++t) {
      reduction += gain_(k, t) * sigma_kt(k, t);
    }
    const double var = cov(predicted_[k], predicted_[k]) - reduction;
    // Numerical floor: eq. (5) guarantees var >= 0 mathematically.
    posterior_sigma_[k] = std::sqrt(std::max(var, 0.0));
  }
}

std::vector<double> ConditionalGaussian::posterior_mean(
    std::span<const double> mean, std::span<const double> observed) const {
  if (observed.size() != measured_.size()) {
    throw std::invalid_argument("posterior_mean: observation size mismatch");
  }
  std::vector<double> innovation(measured_.size());
  for (std::size_t t = 0; t < measured_.size(); ++t) {
    innovation[t] = observed[t] - mean[measured_[t]];
  }
  std::vector<double> out(predicted_.size());
  for (std::size_t k = 0; k < predicted_.size(); ++k) {
    double acc = mean[predicted_[k]];
    for (std::size_t t = 0; t < measured_.size(); ++t) {
      acc += gain_(k, t) * innovation[t];
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace effitest::stats
