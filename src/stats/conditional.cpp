#include "stats/conditional.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace effitest::stats {

std::shared_ptr<const PredictionGain> PredictionGain::compute(
    const linalg::Matrix& cov, std::vector<std::size_t> measured,
    double jitter) {
  const std::size_t n = cov.rows();
  if (!cov.is_square()) {
    throw std::invalid_argument("PredictionGain: covariance not square");
  }
  auto out = std::make_shared<PredictionGain>();
  out->measured = std::move(measured);

  std::vector<bool> is_measured(n, false);
  for (std::size_t idx : out->measured) {
    if (idx >= n) {
      throw std::invalid_argument("PredictionGain: index out of range");
    }
    if (is_measured[idx]) {
      throw std::invalid_argument("PredictionGain: duplicate index");
    }
    is_measured[idx] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_measured[i]) out->predicted.push_back(i);
  }

  const std::size_t nt = out->measured.size();
  const std::size_t nk = out->predicted.size();

  if (nt == 0) {
    // Degenerate: nothing measured; posterior equals prior.
    out->gain = linalg::Matrix(nk, 0);
    out->posterior_sigma.resize(nk);
    for (std::size_t k = 0; k < nk; ++k) {
      out->posterior_sigma[k] =
          std::sqrt(std::max(cov(out->predicted[k], out->predicted[k]), 0.0));
    }
    return out;
  }

  // Sigma_t (measured block) and Sigma_{k,t} (cross block).
  const linalg::Matrix sigma_t = cov.select(out->measured, out->measured);
  const linalg::Matrix sigma_kt = cov.select(out->predicted, out->measured);

  // W = Sigma_{k,t} Sigma_t^{-1}  computed as solving Sigma_t W^T = Sigma_{t,k}.
  out->chol_sigma_t = linalg::cholesky(sigma_t, jitter);
  const linalg::Matrix wt =
      out->chol_sigma_t.solve(sigma_kt.transposed());  // nt x nk
  out->gain = wt.transposed();                         // nk x nt

  out->posterior_sigma.resize(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    double reduction = 0.0;
    for (std::size_t t = 0; t < nt; ++t) {
      reduction += out->gain(k, t) * sigma_kt(k, t);
    }
    const double var = cov(out->predicted[k], out->predicted[k]) - reduction;
    // Numerical floor: eq. (5) guarantees var >= 0 mathematically.
    out->posterior_sigma[k] = std::sqrt(std::max(var, 0.0));
  }
  return out;
}

ConditionalGaussian::ConditionalGaussian(
    std::shared_ptr<const PredictionGain> gain)
    : gain_(std::move(gain)) {
  if (gain_ == nullptr) {
    throw std::invalid_argument("ConditionalGaussian: null PredictionGain");
  }
}

std::vector<double> ConditionalGaussian::posterior_mean(
    std::span<const double> mean, std::span<const double> observed) const {
  const auto& measured = gain_->measured;
  const auto& predicted = gain_->predicted;
  if (observed.size() != measured.size()) {
    throw std::invalid_argument("posterior_mean: observation size mismatch");
  }
  std::vector<double> innovation(measured.size());
  for (std::size_t t = 0; t < measured.size(); ++t) {
    innovation[t] = observed[t] - mean[measured[t]];
  }
  std::vector<double> out(predicted.size());
  for (std::size_t k = 0; k < predicted.size(); ++k) {
    double acc = mean[predicted[k]];
    for (std::size_t t = 0; t < measured.size(); ++t) {
      acc += gain_->gain(k, t) * innovation[t];
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace effitest::stats
