#pragma once
// Conditional Gaussian prediction — the statistical heart of EffiTest §3.1.
//
// Given jointly Gaussian delays D = [d_k; D_t] ~ N(mu, Sigma), once the
// subset D_t has been *measured* as d_t, each unmeasured delay d_k follows
//
//   mu'_k    = mu_k + Sigma_{k,t} Sigma_t^{-1} (d_t - mu_t)         (paper eq. 4)
//   sigma'_k = sqrt(sigma_k^2 - Sigma_{k,t} Sigma_t^{-1} Sigma_{t,k})   (eq. 5)
//
// The gain matrix W = Sigma_{k,t} Sigma_t^{-1} and the posterior sigmas do
// not depend on the measured values, so the whole prediction operator is a
// function of (Sigma, measured index set) alone. PredictionGain packages it
// — the Cholesky factor of Sigma_t, W and the posterior sigmas — as one
// immutable, shareable object: the flow computes it once per (grouping,
// measured-set) during offline preparation and every chip, every reused
// FlowArtifacts copy and every same-circuit campaign job predicts through
// the same factorization. Per-chip prediction is then a single mat-vec,
// which is what makes the paper's per-chip estimation step (column Ts of
// Table 1) essentially free.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "linalg/decomposition.hpp"
#include "linalg/matrix.hpp"

namespace effitest::stats {

/// The chip-independent part of conditional-Gaussian prediction over a
/// fixed index split: Cholesky of Sigma_t, the gain W and the posterior
/// sigmas. Immutable once computed; share via shared_ptr instead of
/// refactorizing or deep-copying.
struct PredictionGain {
  std::vector<std::size_t> measured;   ///< observed indices (input order)
  std::vector<std::size_t> predicted;  ///< remaining indices, ascending
  /// Cholesky factor of Sigma_t (empty when nothing is measured).
  linalg::Cholesky chol_sigma_t;
  /// Gain matrix W (|predicted| x |measured|).
  linalg::Matrix gain;
  /// Posterior standard deviations sigma'_k per predicted index (eq. 5).
  std::vector<double> posterior_sigma;

  /// Factor Sigma_t and form W and the posterior sigmas. `cov` is the joint
  /// covariance over n variables; `measured` lists the indices that will be
  /// observed (order defines the observation vector layout). Throws on
  /// duplicate/out-of-range indices or a non-SPD measured block (within
  /// `jitter` regularization).
  [[nodiscard]] static std::shared_ptr<const PredictionGain> compute(
      const linalg::Matrix& cov, std::vector<std::size_t> measured,
      double jitter = 1e-12);
};

/// Conditional-Gaussian predictor over a fixed index split. A thin handle
/// on a shared PredictionGain: copying a ConditionalGaussian (or anything
/// holding one, e.g. core::FlowArtifacts) shares the factorization instead
/// of duplicating it.
class ConditionalGaussian {
 public:
  /// Compute a fresh gain (see PredictionGain::compute).
  ConditionalGaussian(const linalg::Matrix& cov,
                      std::vector<std::size_t> measured, double jitter = 1e-12)
      : gain_(PredictionGain::compute(cov, std::move(measured), jitter)) {}

  /// Adopt an already-computed gain; no factorization happens.
  explicit ConditionalGaussian(std::shared_ptr<const PredictionGain> gain);

  [[nodiscard]] const std::vector<std::size_t>& measured_indices() const {
    return gain_->measured;
  }
  [[nodiscard]] const std::vector<std::size_t>& predicted_indices() const {
    return gain_->predicted;
  }

  /// Gain matrix W (|predicted| x |measured|).
  [[nodiscard]] const linalg::Matrix& gain() const { return gain_->gain; }

  /// Posterior standard deviations sigma'_k, one per predicted index
  /// (chip-independent, paper eq. 5).
  [[nodiscard]] const std::vector<double>& posterior_sigma() const {
    return gain_->posterior_sigma;
  }

  /// The shared chip-independent prediction operator.
  [[nodiscard]] const std::shared_ptr<const PredictionGain>& shared_gain()
      const {
    return gain_;
  }

  /// Posterior means mu'_k for the predicted indices given the measured
  /// values (paper eq. 4). `mean` is the full-length prior mean vector;
  /// `observed` follows the order of measured_indices().
  [[nodiscard]] std::vector<double> posterior_mean(
      std::span<const double> mean, std::span<const double> observed) const;

 private:
  std::shared_ptr<const PredictionGain> gain_;
};

}  // namespace effitest::stats
