#pragma once
// Conditional Gaussian prediction — the statistical heart of EffiTest §3.1.
//
// Given jointly Gaussian delays D = [d_k; D_t] ~ N(mu, Sigma), once the
// subset D_t has been *measured* as d_t, each unmeasured delay d_k follows
//
//   mu'_k    = mu_k + Sigma_{k,t} Sigma_t^{-1} (d_t - mu_t)         (paper eq. 4)
//   sigma'_k = sqrt(sigma_k^2 - Sigma_{k,t} Sigma_t^{-1} Sigma_{t,k})   (eq. 5)
//
// The gain matrix W = Sigma_{k,t} Sigma_t^{-1} and the posterior sigmas do
// not depend on the measured values, so they are precomputed once per
// circuit; per-chip prediction is then a single mat-vec. This is what makes
// the paper's per-chip estimation step (column Ts of Table 1) essentially free.

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace effitest::stats {

/// Precomputed conditional-Gaussian predictor over a fixed index split.
class ConditionalGaussian {
 public:
  /// `cov` is the joint covariance over n variables; `measured` lists the
  /// indices that will be observed (order defines the observation vector
  /// layout). The remaining indices, in ascending order, form the predicted
  /// set. Throws on duplicate/out-of-range indices or non-SPD measured block.
  ConditionalGaussian(const linalg::Matrix& cov,
                      std::vector<std::size_t> measured,
                      double jitter = 1e-12);

  [[nodiscard]] const std::vector<std::size_t>& measured_indices() const {
    return measured_;
  }
  [[nodiscard]] const std::vector<std::size_t>& predicted_indices() const {
    return predicted_;
  }

  /// Gain matrix W (|predicted| x |measured|).
  [[nodiscard]] const linalg::Matrix& gain() const { return gain_; }

  /// Posterior standard deviations sigma'_k, one per predicted index
  /// (chip-independent, paper eq. 5).
  [[nodiscard]] const std::vector<double>& posterior_sigma() const {
    return posterior_sigma_;
  }

  /// Posterior means mu'_k for the predicted indices given the measured
  /// values (paper eq. 4). `mean` is the full-length prior mean vector;
  /// `observed` follows the order of measured_indices().
  [[nodiscard]] std::vector<double> posterior_mean(
      std::span<const double> mean, std::span<const double> observed) const;

 private:
  std::vector<std::size_t> measured_;
  std::vector<std::size_t> predicted_;
  linalg::Matrix gain_;
  std::vector<double> posterior_sigma_;
};

}  // namespace effitest::stats
