#pragma once
// Scalar Gaussian utilities and descriptive statistics.

#include <span>
#include <vector>

namespace effitest::stats {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double z);

/// Standard normal CDF Phi(z).
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-12 over (0,1)). Throws std::domain_error
/// outside (0,1).
[[nodiscard]] double normal_quantile(double p);

/// Arithmetic mean; throws std::invalid_argument on empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (divides by n-1; by n when n == 1 returns 0).
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Empirical quantile with linear interpolation, q in [0,1].
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Pearson correlation of two equally sized samples.
[[nodiscard]] double correlation(std::span<const double> a,
                                 std::span<const double> b);

}  // namespace effitest::stats
