#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace effitest::stats {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile requires p in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("variance of empty sample");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("correlation: size mismatch or empty");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace effitest::stats
