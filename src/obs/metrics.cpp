#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "io/json.hpp"

namespace effitest::obs {

void Histogram::record(double seconds) {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<std::size_t>(std::log2(us));
    bucket = std::min(bucket, kBuckets - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // CAS loop: atomic<double>::fetch_add is not guaranteed lock-free
  // everywhere this builds (same pattern as Gauge::add).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; walk the cumulative counts.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Geometric midpoint of [2^b, 2^(b+1)) microseconds, in seconds.
      return std::exp2(static_cast<double>(b) + 0.5) * 1e-6;
    }
  }
  return std::exp2(static_cast<double>(kBuckets)) * 1e-6;
}

std::uint64_t RegistrySnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double RegistrySnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

namespace {

template <typename Vec>
auto& get_or_create(Vec& vec, const std::string& name) {
  for (auto& [n, instrument] : vec) {
    if (n == name) return *instrument;
  }
  vec.emplace_back(name, std::make_unique<
                             typename Vec::value_type::second_type::element_type>());
  return *vec.back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return get_or_create(histograms_, name);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

std::string render_status_json(const RegistrySnapshot& snap) {
  io::json::Writer w;
  w.raw("{").key("schema").string("effitest-status-v1");
  w.raw(", ").key("counters").raw("{");
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) w.raw(", ");
    first = false;
    w.key(name).number(value);
  }
  w.raw("}, ").key("gauges").raw("{");
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) w.raw(", ");
    first = false;
    w.key(name).number(value);
  }
  w.raw("}, ").key("histograms").raw("{");
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) w.raw(", ");
    first = false;
    w.key(name).raw("{").key("count").number(h.count);
    w.raw(", ").key("p50").number(h.quantile(0.50));
    w.raw(", ").key("p90").number(h.quantile(0.90));
    w.raw(", ").key("p99").number(h.quantile(0.99));
    w.raw("}");
  }
  w.raw("}}");
  return w.take();
}

std::string render_prometheus_text(const RegistrySnapshot& snap) {
  const auto sanitize = [](const std::string& name) {
    std::string out = "effitest_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  };
  std::string text;
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = sanitize(name);
    text += "# TYPE " + pname + " counter\n";
    text += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = sanitize(name);
    text += "# TYPE " + pname + " gauge\n";
    text += pname + " " + io::json::format_double(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pname = sanitize(name);
    text += "# TYPE " + pname + " histogram\n";
    // Native histogram exposition: one cumulative line per bucket; the
    // record() clamp makes the last bucket the +Inf catch-all, so its
    // cumulative value is exactly _count.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b + 1 == HistogramSnapshot::kBuckets
              ? "+Inf"
              : io::json::format_double(
                    HistogramSnapshot::bucket_upper_bound(b));
      text += pname + "_bucket{le=\"" + le + "\"} " +
              std::to_string(cumulative) + "\n";
    }
    text += pname + "_sum " + io::json::format_double(h.sum) + "\n";
    text += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return text;
}

}  // namespace effitest::obs
