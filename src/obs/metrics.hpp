#pragma once
// Live observability: thread-safe named metrics for long-running fleets.
// DESIGN.md §14.
//
// The serve loop (and anything else long-running) registers counters,
// gauges and histograms here instead of keeping ad-hoc mutex-guarded
// fields; a RegistrySnapshot taken at any instant renders to the one-line
// `effitest-status-v1` JSON that the in-band `status` request and the
// `--status-port` endpoint return, so a fleet can be watched mid-run
// instead of autopsied from the end-of-run summary.
//
// Contracts:
//  - Counter/Gauge/Histogram instruments are lock-free (relaxed atomics);
//    recording on the hot path costs one uncontended RMW — the registry
//    mutex is touched only at registration and snapshot time.
//  - Counters are monotonic. A snapshot taken mid-run is elementwise <=
//    any later snapshot (the tests/net status-polling test pins this).
//  - Instrument references returned by the registry stay valid for the
//    registry's lifetime (unique_ptr-backed; the vector may reallocate,
//    the instruments never move).
//  - Histogram buckets are power-of-two microseconds, the exact math the
//    serve latency percentiles always used: bucket i holds durations in
//    [2^i, 2^(i+1)) us, quantile() answers the geometric midpoint of the
//    bucket the ceil-rank lands in — 2 significant figures, O(1) memory.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace effitest::obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (active sessions, queue depth, wall seconds).
/// Either stores a value (set/add) or, when bound, computes one on read —
/// bind() must happen before the gauge is read concurrently (the serve
/// loop binds its queue-depth gauge before spawning any thread).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // CAS loop: atomic<double>::fetch_add is not guaranteed lock-free
    // everywhere this builds.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void bind(std::function<double()> fn) { callback_ = std::move(fn); }
  [[nodiscard]] double value() const {
    if (callback_) return callback_();
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::function<double()> callback_;
};

/// Frozen histogram state: the bucket copy is internally consistent (count
/// is the sum of the copied buckets, never a separately-raced field). `sum`
/// is copied from its own accumulator and may trail the buckets by the
/// events racing with the snapshot — fine for the rate/mean arithmetic the
/// exposition format exists for.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 48;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;  ///< total recorded duration, seconds

  /// q in [0, 1]; 0 when nothing was recorded. Answers in seconds.
  [[nodiscard]] double quantile(double q) const;

  /// Inclusive upper bound of bucket b in seconds (2^(b+1) us); the last
  /// bucket is the +Inf catch-all.
  [[nodiscard]] static double bucket_upper_bound(std::size_t b) {
    return static_cast<double>(std::uint64_t{1} << (b + 1)) * 1e-6;
  }
};

/// Power-of-two-bucketed duration histogram, recording in seconds.
/// Lock-free; concurrent record() calls never lose an event.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void record(double seconds);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const { return snapshot().count; }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};  ///< CAS-accumulated; see Gauge::add
};

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Lookup helpers; a missing name answers 0 / nullptr so callers can
  /// probe optional instruments without try/catch.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      const std::string& name) const;
};

/// Get-or-create registry of named instruments. Registration order is
/// preserved into snapshots and rendered status JSON, so output is
/// deterministic for a fixed registration sequence.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// One-line `effitest-status-v1` JSON (no trailing newline):
///   {"schema": "effitest-status-v1",
///    "counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count": n, "p50": s, "p90": s, "p99": s}}}
/// Histogram quantiles are in seconds, like the snapshot they come from.
[[nodiscard]] std::string render_status_json(const RegistrySnapshot& snap);

/// Prometheus text exposition format for the same snapshot (the `status
/// prometheus` in-band request and `status --connect --format=prometheus`).
/// Metric names are prefixed `effitest_` with non-[a-zA-Z0-9_] characters
/// mapped to `_` (serve.sessions_per_sec -> effitest_serve_sessions_per_sec);
/// counters render as `# TYPE ... counter`, gauges as gauges, histograms as
/// native `# TYPE ... histogram` series: one cumulative `_bucket{le="..."}`
/// line per power-of-two bucket (upper bounds in seconds), the final bucket
/// as `le="+Inf"` (whose value equals `_count`), plus `_sum` and `_count`.
/// Multi-line, ends with a newline.
[[nodiscard]] std::string render_prometheus_text(const RegistrySnapshot& snap);

}  // namespace effitest::obs
