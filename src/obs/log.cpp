#include "obs/log.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"

namespace effitest::obs {

LogField LogField::str(std::string key, std::string value) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kString;
  f.string_value = std::move(value);
  return f;
}

LogField LogField::u64(std::string key, std::uint64_t value) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kUint;
  f.uint_value = value;
  return f;
}

LogField LogField::f64(std::string key, double value) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kDouble;
  f.double_value = value;
  return f;
}

LogField LogField::boolean(std::string key, bool value) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kBool;
  f.bool_value = value;
  return f;
}

namespace {

double system_clock_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StructuredLog::StructuredLog(std::ostream& out, LogFormat format)
    : out_(&out), format_(format), clock_(system_clock_seconds) {}

StructuredLog::StructuredLog(std::ofstream file, LogFormat format)
    : file_(std::move(file)),
      out_(&file_),
      format_(format),
      clock_(system_clock_seconds) {}

std::unique_ptr<StructuredLog> StructuredLog::open_file(
    const std::string& path, LogFormat format) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("log: cannot open " + path + " for writing");
  }
  // std::make_unique cannot reach the private ctor.
  return std::unique_ptr<StructuredLog>(
      new StructuredLog(std::move(file), format));
}

void StructuredLog::set_clock(Clock clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

std::string StructuredLog::format_line(
    double ts, const std::string& component, const std::string& event,
    std::initializer_list<LogField> fields) const {
  if (format_ == LogFormat::kJson) {
    io::json::Writer w;
    w.raw("{").key("schema").string("effitest-log-v1");
    w.raw(", ").key("ts").number(ts);
    w.raw(", ").key("component").string(component);
    w.raw(", ").key("event").string(event);
    for (const LogField& f : fields) {
      w.raw(", ").key(f.key);
      switch (f.kind) {
        case LogField::Kind::kString: w.string(f.string_value); break;
        case LogField::Kind::kUint: w.number(f.uint_value); break;
        case LogField::Kind::kDouble: w.number(f.double_value); break;
        case LogField::Kind::kBool: w.boolean(f.bool_value); break;
      }
    }
    w.raw("}");
    return w.take();
  }
  std::string line = "ts=" + io::json::format_double(ts) + " " + component +
                     " " + event;
  for (const LogField& f : fields) {
    line += " " + f.key + "=";
    switch (f.kind) {
      case LogField::Kind::kString: line += f.string_value; break;
      case LogField::Kind::kUint:
        line += std::to_string(f.uint_value);
        break;
      case LogField::Kind::kDouble:
        line += io::json::format_double(f.double_value);
        break;
      case LogField::Kind::kBool: line += f.bool_value ? "true" : "false";
        break;
    }
  }
  return line;
}

void StructuredLog::emit(const std::string& component,
                         const std::string& event,
                         std::initializer_list<LogField> fields) {
  // Read the clock and format outside the lock; take the lock only for
  // the atomic whole-line append so concurrent sessions never interleave.
  double ts = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ts = clock_ ? clock_() : 0.0;
  }
  const std::string line = format_line(ts, component, event, fields);
  const std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
}

bool parse_log_format(const std::string& text, LogFormat& out) {
  if (text == "text") {
    out = LogFormat::kText;
    return true;
  }
  if (text == "json") {
    out = LogFormat::kJson;
    return true;
  }
  return false;
}

}  // namespace effitest::obs
