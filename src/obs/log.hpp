#pragma once
// Structured event log: one line per event, text or JSON. DESIGN.md §14.
//
// JSON lines follow `effitest-log-v1`:
//
//   {"schema": "effitest-log-v1", "ts": 1722959000.125, "component":
//    "serve", "event": "session_complete", "session": 3, "chips": 4, ...}
//
// `ts` is Unix seconds (system clock) with sub-second precision; the
// remaining keys are the event's fields in emission order. Text format is
// the same data as `ts=... component event key=value ...` for eyeballing.
//
// Zero-overhead-when-disabled rule: call sites hold a StructuredLog* that
// is nullptr unless the user asked for logging (`--log-format/--log-file`)
// and guard every emit with `if (log)`. The disabled path is one pointer
// test — the perf gates in bench/baselines must hold with logging off.
//
// Thread-safety: emit() formats outside the lock and writes the finished
// line under one mutex, so concurrent sessions interleave whole lines,
// never characters.

#include <cstdint>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace effitest::obs {

enum class LogFormat { kText, kJson };

/// One key/value field of an event. Build with the static factories so
/// the value's JSON type (string/integer/double/bool) is explicit.
struct LogField {
  enum class Kind { kString, kUint, kDouble, kBool };

  static LogField str(std::string key, std::string value);
  static LogField u64(std::string key, std::uint64_t value);
  static LogField f64(std::string key, double value);
  static LogField boolean(std::string key, bool value);

  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

class StructuredLog {
 public:
  /// Unix-seconds clock, injectable so the schema golden test can pin an
  /// exact output line. The default reads std::chrono::system_clock.
  using Clock = std::function<double()>;

  /// Log to a caller-owned stream (the CLI passes std::clog for the
  /// default `--log-format` without `--log-file`).
  StructuredLog(std::ostream& out, LogFormat format);

  /// Log to a file (created/truncated). Throws std::runtime_error when
  /// the path cannot be opened.
  static std::unique_ptr<StructuredLog> open_file(const std::string& path,
                                                  LogFormat format);

  void set_clock(Clock clock);

  void emit(const std::string& component, const std::string& event,
            std::initializer_list<LogField> fields);

  /// The exact line emit() would write (no trailing newline) at time
  /// `ts` — the formatting core, exposed for the golden test.
  [[nodiscard]] std::string format_line(
      double ts, const std::string& component, const std::string& event,
      std::initializer_list<LogField> fields) const;

 private:
  explicit StructuredLog(std::ofstream file, LogFormat format);

  std::mutex mutex_;
  std::ofstream file_;   ///< owns the sink in the open_file case
  std::ostream* out_;    ///< always valid; aliases file_ or the ctor stream
  LogFormat format_;
  Clock clock_;
};

/// Parse a `--log-format=` value; empty answers false. `out` untouched on
/// failure so callers keep their default.
[[nodiscard]] bool parse_log_format(const std::string& text, LogFormat& out);

}  // namespace effitest::obs
