#pragma once
// Statistical circuit timing model: the bridge between the structural world
// (netlist + STA) and the statistical machinery of EffiTest.
//
// For every monitored FF pair (a path p_ij in the paper's terminology —
// np of them in Table 1) the model carries:
//  * a first-order canonical delay form of the nominally-critical path
//    (mean + sparse loading over spatial variation factors + independent
//    mismatch variance) used for covariance, grouping, PCA and prediction;
//  * the full set of near-critical structural paths, used when sampling the
//    *true* delays of a simulated die (the tested quantity is the max);
//  * the shortest structural path (hold-time analysis, §3.5).
//
// Monitored pairs are exactly the FF pairs incident to a buffered flip-flop:
// their setup constraints involve tuning values x_i, so their delays are
// "required for buffer configuration" (column np). Remaining pairs are kept
// as static background: a pair whose delay cannot plausibly approach the
// clock period (mean + 6 sigma below a conservative threshold) is discarded
// from per-chip evaluation; any other non-tunable pair is promoted into the
// checked set.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"
#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "stats/rng.hpp"
#include "timing/graph.hpp"
#include "timing/variation.hpp"

namespace effitest::timing {

/// First-order canonical delay form of one structural path.
struct DelayForm {
  double mean = 0.0;            ///< nominal delay (+ setup for max forms), ps
  SparseLoading loading;        ///< systematic factor loadings (ps per unit z)
  std::vector<int> mismatch_slots;  ///< sorted slot ids of contributing gates
  double mismatch_var = 0.0;    ///< total independent mismatch variance, ps^2
  double extra_indep_var = 0.0; ///< additional independent variance (Fig 7)

  [[nodiscard]] double variance() const {
    return sparse_dot(loading, loading) + mismatch_var + extra_indep_var;
  }
  [[nodiscard]] double sigma() const;
};

/// One monitored FF-pair path p_ij.
struct MonitoredPair {
  int id = -1;
  int src_ff = -1;
  int dst_ff = -1;
  DelayForm max_form;                ///< critical-path canonical form (+ setup)
  std::vector<DelayForm> max_alts;   ///< all near-critical forms (truth = max)
  DelayForm min_form;                ///< shortest-path form (hold)
  bool src_buffered = false;
  bool dst_buffered = false;
};

/// True (sampled) delays of one simulated die.
struct Chip {
  /// Per monitored pair: true max delay (includes setup), ps.
  std::vector<double> max_delay;
  /// Per monitored pair: true min path delay (no hold adjustment), ps.
  std::vector<double> min_delay;
  /// True max delays of promoted non-tunable background pairs.
  std::vector<double> static_delay;
};

/// Reusable buffers for repeated die sampling (spatial factors + mismatch
/// deviates). Purely an allocation cache: sampled values never depend on
/// it. Keep one per worker when sampling in a loop.
struct SampleWorkspace {
  std::vector<double> factors;
  std::vector<double> mismatch;
};

struct ModelOptions {
  VariationParams variation{};
  double slack_window_ps = 15.0;       ///< near-critical enumeration window
  std::size_t max_paths_per_pair = 4;  ///< truth evaluation path cap
  /// Fig-7 knob: scale every path sigma by this factor by *adding
  /// independent variance*, leaving cross covariances untouched.
  double random_inflation = 1.0;
  /// Background pairs with mean + 6 sigma below this fraction of the critical
  /// delay are statically discarded.
  double static_discard_fraction = 0.6;
};

class CircuitModel {
 public:
  CircuitModel(const netlist::Netlist& netlist,
               const netlist::CellLibrary& library,
               std::vector<int> buffered_ffs, ModelOptions options = {});

  [[nodiscard]] const std::vector<MonitoredPair>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] std::size_t num_pairs() const { return pairs_.size(); }
  [[nodiscard]] const std::vector<int>& buffered_ffs() const {
    return buffered_ffs_;
  }
  /// Buffer index of an FF cell id, or -1 when the FF carries no buffer.
  [[nodiscard]] int buffer_index(int ff) const;

  [[nodiscard]] const ModelOptions& options() const { return options_; }
  [[nodiscard]] double setup_time() const { return setup_time_; }
  [[nodiscard]] double hold_time() const { return hold_time_; }
  /// Nominal critical delay (max monitored mean, includes setup), ps.
  [[nodiscard]] double nominal_critical_delay() const { return critical_; }

  /// Prior means of monitored max delays (paper's mu vector).
  [[nodiscard]] std::vector<double> max_means() const;
  /// Prior sigmas of monitored max delays.
  [[nodiscard]] std::vector<double> max_sigmas() const;
  /// Joint covariance of monitored max delays (paper's Sigma). The fill is
  /// fanned out over the shared pool (`threads` workers; 0 = pool width,
  /// 1 = serial); every cell is a pure function of the model, so the matrix
  /// is bit-identical for any value.
  [[nodiscard]] linalg::Matrix max_covariance(std::size_t threads = 0) const;

  /// Covariance between two monitored pairs' max forms.
  [[nodiscard]] double max_cov(std::size_t i, std::size_t j) const;

  /// Sample the true delays of one die.
  [[nodiscard]] Chip sample_chip(stats::Rng& rng) const;

  /// Same draws, same values, reusing the caller's workspace buffers.
  [[nodiscard]] Chip sample_chip(stats::Rng& rng, SampleWorkspace& ws) const;

  /// Untuned required period of one die: max over the monitored and
  /// promoted-static max delays. Consumes exactly the same rng stream as
  /// sample_chip (unused inflation draws are made and discarded), so
  /// calibration loops can skip the hold/min-path evaluations they never
  /// read without perturbing any downstream stream.
  [[nodiscard]] double sample_required_period(stats::Rng& rng,
                                              SampleWorkspace& ws) const;

  /// Min (hold) path delays only, same stream as sample_chip; fills
  /// `min_out` (resized to num_pairs()). The hold-bound sampler reads
  /// nothing else, so the max/static evaluations are skipped (their
  /// inflation draws are made and discarded).
  void sample_min_delays(stats::Rng& rng, SampleWorkspace& ws,
                         std::vector<double>& min_out) const;

  /// Number of promoted (checked but non-tunable) background pairs.
  [[nodiscard]] std::size_t num_static_pairs() const {
    return static_forms_.size();
  }
  /// Canonical forms of the promoted background pairs (setup margin
  /// included, like the monitored max forms). Their registers carry no
  /// buffer, so their pass constraint has no tuning slack.
  [[nodiscard]] const std::vector<DelayForm>& static_forms() const {
    return static_forms_;
  }
  /// Count of background pairs discarded as statically safe.
  [[nodiscard]] std::size_t num_discarded_pairs() const {
    return discarded_pairs_;
  }

 private:
  [[nodiscard]] DelayForm build_form(const StructuralPath& path,
                                     double terminal_margin);
  [[nodiscard]] int mismatch_slot(int cell_id);
  void draw_deviates(stats::Rng& rng, SampleWorkspace& ws) const;
  [[nodiscard]] double eval_form(const DelayForm& f, const SampleWorkspace& ws,
                                 stats::Rng& rng) const;
  void discard_form_draw(const DelayForm& f, stats::Rng& rng) const;
  [[nodiscard]] double form_cov(const DelayForm& a, const DelayForm& b) const;
  void apply_inflation(DelayForm& f) const;

  const netlist::Netlist* netlist_;
  const netlist::CellLibrary* library_;
  ModelOptions options_;
  VariationModel variation_;
  std::vector<int> buffered_ffs_;
  std::unordered_map<int, int> buffer_index_;
  std::vector<MonitoredPair> pairs_;
  std::vector<DelayForm> static_forms_;
  std::size_t discarded_pairs_ = 0;
  double setup_time_ = 0.0;
  double hold_time_ = 0.0;
  double critical_ = 0.0;

  // Mismatch bookkeeping: cell id -> slot, slot -> variance.
  std::unordered_map<int, int> slot_of_cell_;
  std::vector<double> slot_var_;
};

}  // namespace effitest::timing
