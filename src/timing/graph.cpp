#include "timing/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace effitest::timing {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

TimingGraph::TimingGraph(const netlist::Netlist& netlist,
                         const netlist::CellLibrary& library)
    : netlist_(&netlist), library_(&library) {
  const std::size_t n = netlist.num_cells();
  delays_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    delays_[i] = library.timing(netlist.cell(static_cast<int>(i)).type)
                     .nominal_delay_ps;
  }
  topo_order_ = netlist.topological_order();
  fanouts_ = netlist.fanouts();
}

TimingGraph::ConeArrival TimingGraph::sweep(int src_ff) const {
  const std::size_t n = netlist_->num_cells();
  ConeArrival cone;
  cone.max_arrival.assign(n, kNegInf);
  cone.min_arrival.assign(n, kNegInf);
  cone.max_arrival[static_cast<std::size_t>(src_ff)] = delays_[static_cast<std::size_t>(src_ff)];
  cone.min_arrival[static_cast<std::size_t>(src_ff)] = delays_[static_cast<std::size_t>(src_ff)];

  for (int id : topo_order_) {
    const netlist::Cell& c = netlist_->cell(id);
    if (!netlist::is_combinational(c.type)) continue;
    double best_max = kNegInf;
    double best_min = kNegInf;
    for (int u : c.fanins) {
      const double am = cone.max_arrival[static_cast<std::size_t>(u)];
      if (am == kNegInf) continue;
      best_max = std::max(best_max, am);
      const double an = cone.min_arrival[static_cast<std::size_t>(u)];
      best_min = (best_min == kNegInf) ? an : std::min(best_min, an);
    }
    if (best_max != kNegInf) {
      const auto i = static_cast<std::size_t>(id);
      cone.max_arrival[i] = best_max + delays_[i];
      cone.min_arrival[i] = best_min + delays_[i];
    }
  }
  return cone;
}

std::vector<PairDelay> TimingGraph::all_pair_delays() const {
  std::vector<PairDelay> out;
  const std::vector<int> ffs = netlist_->flip_flops();
  for (int s : ffs) {
    const ConeArrival cone = sweep(s);
    for (int t : ffs) {
      const int w = netlist_->cell(t).fanins.empty() ? -1 : netlist_->cell(t).fanins[0];
      if (w < 0) continue;
      const double am = cone.max_arrival[static_cast<std::size_t>(w)];
      if (am == kNegInf) continue;
      out.push_back(PairDelay{s, t, am, cone.min_arrival[static_cast<std::size_t>(w)]});
    }
  }
  return out;
}

std::vector<StructuralPath> TimingGraph::near_critical_paths(
    int src_ff, int dst_ff, double slack_window, std::size_t max_paths) const {
  return near_critical_paths(sweep(src_ff), src_ff, dst_ff, slack_window,
                             max_paths);
}

std::vector<StructuralPath> TimingGraph::near_critical_paths(
    const ConeArrival& cone, int src_ff, int dst_ff, double slack_window,
    std::size_t max_paths) const {
  std::vector<StructuralPath> out;
  const netlist::Cell& dst = netlist_->cell(dst_ff);
  if (dst.type != netlist::CellType::kDff || dst.fanins.empty()) {
    throw netlist::NetlistError("near_critical_paths: dst is not a driven DFF");
  }
  const int w = dst.fanins[0];
  const double full = cone.max_arrival[static_cast<std::size_t>(w)];
  if (full == kNegInf) return out;
  const double threshold = full - slack_window;
  const double clkq = delays_[static_cast<std::size_t>(src_ff)];

  // Backward DFS from the D-pin driver. `trail` holds gates from the current
  // node up to w in reverse propagation order.
  std::vector<int> trail;
  const auto visit = [&](auto&& self, int v, double suffix) -> void {
    if (out.size() >= max_paths) return;
    trail.push_back(v);
    const netlist::Cell& cell = netlist_->cell(v);
    // Fanins sorted by descending max arrival so the critical path pops first.
    std::vector<int> preds = cell.fanins;
    std::sort(preds.begin(), preds.end(), [&](int a, int bb) {
      return cone.max_arrival[static_cast<std::size_t>(a)] >
             cone.max_arrival[static_cast<std::size_t>(bb)];
    });
    for (int u : preds) {
      if (out.size() >= max_paths) break;
      if (u == src_ff) {
        if (clkq + suffix >= threshold - 1e-12) {
          StructuralPath p;
          p.src_ff = src_ff;
          p.dst_ff = dst_ff;
          p.gates.assign(trail.rbegin(), trail.rend());
          p.nominal_delay = clkq + suffix;
          out.push_back(std::move(p));
        }
        continue;
      }
      const netlist::Cell& uc = netlist_->cell(u);
      if (!netlist::is_combinational(uc.type)) continue;
      const double au = cone.max_arrival[static_cast<std::size_t>(u)];
      if (au == kNegInf) continue;
      if (au + suffix < threshold - 1e-12) continue;  // prune
      self(self, u, suffix + delays_[static_cast<std::size_t>(u)]);
    }
    trail.pop_back();
  };
  visit(visit, w, delays_[static_cast<std::size_t>(w)]);

  std::sort(out.begin(), out.end(),
            [](const StructuralPath& a, const StructuralPath& b) {
              return a.nominal_delay > b.nominal_delay;
            });
  return out;
}

StructuralPath TimingGraph::min_path(int src_ff, int dst_ff) const {
  return min_path(sweep(src_ff), src_ff, dst_ff);
}

StructuralPath TimingGraph::min_path(const ConeArrival& cone, int src_ff,
                                     int dst_ff) const {
  const netlist::Cell& dst = netlist_->cell(dst_ff);
  if (dst.type != netlist::CellType::kDff || dst.fanins.empty()) {
    throw netlist::NetlistError("min_path: dst is not a driven DFF");
  }
  const int w = dst.fanins[0];
  if (cone.max_arrival[static_cast<std::size_t>(w)] == kNegInf) {
    throw netlist::NetlistError("min_path: pair not connected");
  }
  StructuralPath p;
  p.src_ff = src_ff;
  p.dst_ff = dst_ff;
  p.nominal_delay = cone.min_arrival[static_cast<std::size_t>(w)];
  // Greedy backtrack along min arrivals.
  int v = w;
  while (v != src_ff) {
    p.gates.push_back(v);
    const netlist::Cell& cell = netlist_->cell(v);
    int best = -1;
    double best_val = 0.0;
    for (int u : cell.fanins) {
      // The minimizing predecessor is the one whose min arrival defined
      // min_arrival[v]; src_ff itself is a valid (DFF) predecessor.
      if (u != src_ff &&
          !netlist::is_combinational(netlist_->cell(u).type)) {
        continue;
      }
      const double a = cone.min_arrival[static_cast<std::size_t>(u)];
      if (a == kNegInf) continue;
      if (best < 0 || a < best_val) {
        best = u;
        best_val = a;
      }
    }
    if (best < 0) {
      throw netlist::NetlistError("min_path: backtrack failed");
    }
    v = best;
  }
  std::reverse(p.gates.begin(), p.gates.end());
  return p;
}

double TimingGraph::nominal_critical_delay() const {
  double worst = 0.0;
  for (const PairDelay& pd : all_pair_delays()) {
    worst = std::max(worst, pd.max_delay);
  }
  return worst;
}

}  // namespace effitest::timing
