#pragma once
// Spatially correlated process-variation model (hierarchical grid factors).
//
// The paper's setup (§4): the standard deviations of transistor length,
// oxide thickness and threshold voltage are 15.7%, 5.3% and 4.4% of nominal;
// the correlation of variations in side-by-side gates is 1 and the
// correlation due to global variations is 0.25.
//
// We realize this with the hierarchical grid model of the paper's reference
// [17] (Chang & Sapatnekar): for each parameter, a gate's deviation is a
// weighted sum of a global factor plus one factor per quad-tree level
// containing the gate's die position:
//
//   dP(g) = sigma_p * ( w0*Z_global + sum_l w_l * Z_{l, cell_l(g)} )
//
// with w0^2 = 0.25 (global correlation floor) and sum w^2 = 1, so two gates
// in the same finest cell (side-by-side) have parameter correlation exactly 1
// and distant gates exactly 0.25. Independent per-gate *delay* mismatch is
// modeled separately (mismatch_frac), which is the knob the Fig.-7
// enlarged-random-variation experiment turns.
//
// Gate delay model (first order, library sensitivities s_p):
//   d(g) = d0 * (1 + sum_p s_p dP_p(g)) + mismatch(g).

#include <span>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "stats/rng.hpp"

namespace effitest::timing {

struct VariationParams {
  double sigma_length = 0.157;
  double sigma_tox = 0.053;
  double sigma_vth = 0.044;
  double global_corr = 0.25;   ///< parameter correlation between distant gates
  int grid_levels = 3;         ///< quad-tree levels: 2x2, 4x4, 8x8
  double mismatch_frac = 0.10; ///< independent delay mismatch as a fraction of
                               ///< the gate's systematic delay sigma (the
                               ///< paper's side-by-side correlation of 1
                               ///< means this is small; Fig. 7 inflates it)
};

/// Sparse factor-loading vector: sorted (factor index, weight) pairs.
/// The delay deviation contributed is sum_i weight_i * z[factor_i] with
/// z ~ iid N(0,1).
using SparseLoading = std::vector<std::pair<int, double>>;

/// Merge-accumulate `add` into `into` (both sorted by factor index).
void accumulate(SparseLoading& into, const SparseLoading& add);

/// Dot product of two sorted sparse loadings.
[[nodiscard]] double sparse_dot(const SparseLoading& a, const SparseLoading& b);

/// Dense gather: sum_i weight_i * z[factor_i].
[[nodiscard]] double sparse_apply(const SparseLoading& a,
                                  std::span<const double> z);

class VariationModel {
 public:
  VariationModel(VariationParams params, const netlist::CellLibrary& library);

  [[nodiscard]] const VariationParams& params() const { return params_; }

  /// Total number of N(0,1) spatial factors (3 parameters x grid factors).
  [[nodiscard]] std::size_t num_factors() const { return num_factors_; }

  /// Systematic loading of one gate instance: weights are in picoseconds of
  /// delay deviation per unit factor. Returned sorted by factor index.
  [[nodiscard]] SparseLoading gate_loading(netlist::CellType type,
                                           netlist::Point pos) const;

  /// Standard deviation (ps) of the gate's independent mismatch term.
  [[nodiscard]] double mismatch_sigma(netlist::CellType type) const;

  /// Systematic delay sigma (ps) of one isolated gate instance.
  [[nodiscard]] double systematic_sigma(netlist::CellType type) const;

  /// One draw of the global factor vector (iid standard normals).
  [[nodiscard]] std::vector<double> sample_factors(stats::Rng& rng) const;

  /// Same draw into a reusable buffer (resized to the factor count).
  void sample_factors(stats::Rng& rng, std::vector<double>& out) const;

 private:
  [[nodiscard]] int cell_index(int level, netlist::Point pos) const;

  VariationParams params_;
  const netlist::CellLibrary* library_;
  std::size_t factors_per_param_ = 0;
  std::size_t num_factors_ = 0;
  double w_global_ = 0.0;
  double w_level_ = 0.0;
};

}  // namespace effitest::timing
