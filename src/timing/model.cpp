#include "timing/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "parallel/deterministic_for.hpp"

namespace effitest::timing {

double DelayForm::sigma() const { return std::sqrt(variance()); }

CircuitModel::CircuitModel(const netlist::Netlist& netlist,
                           const netlist::CellLibrary& library,
                           std::vector<int> buffered_ffs, ModelOptions options)
    : netlist_(&netlist),
      library_(&library),
      options_(options),
      variation_(options.variation, library),
      buffered_ffs_(std::move(buffered_ffs)) {
  if (options_.random_inflation < 1.0) {
    throw std::invalid_argument("random_inflation must be >= 1");
  }
  setup_time_ = library.dff_setup_ps();
  hold_time_ = library.dff_hold_ps();
  for (std::size_t i = 0; i < buffered_ffs_.size(); ++i) {
    const int ff = buffered_ffs_[i];
    if (netlist.cell(ff).type != netlist::CellType::kDff) {
      throw std::invalid_argument("buffered cell is not a flip-flop");
    }
    if (!buffer_index_.emplace(ff, static_cast<int>(i)).second) {
      throw std::invalid_argument("duplicate buffered flip-flop");
    }
  }

  const TimingGraph graph(netlist, library);
  const std::vector<int> ffs = netlist.flip_flops();

  // Pass 1: discover pairs per source FF; build monitored pairs fully and
  // keep background candidates (mean only) for the static check below.
  struct StaticCandidate {
    int src, dst;
    double mean;
  };
  std::vector<StaticCandidate> background;
  double crit = 0.0;

  for (int s : ffs) {
    const TimingGraph::ConeArrival cone = graph.sweep(s);
    for (int t : ffs) {
      const netlist::Cell& tc = netlist.cell(t);
      if (tc.fanins.empty()) continue;
      const int w = tc.fanins[0];
      const double am = cone.max_arrival[static_cast<std::size_t>(w)];
      if (am == -std::numeric_limits<double>::infinity()) continue;
      const bool src_buf = buffer_index_.contains(s);
      const bool dst_buf = buffer_index_.contains(t);
      crit = std::max(crit, am + setup_time_);
      if (!src_buf && !dst_buf) {
        background.push_back({s, t, am + setup_time_});
        continue;
      }
      MonitoredPair p;
      p.id = static_cast<int>(pairs_.size());
      p.src_ff = s;
      p.dst_ff = t;
      p.src_buffered = src_buf;
      p.dst_buffered = dst_buf;
      const auto alts = graph.near_critical_paths(
          cone, s, t, options_.slack_window_ps, options_.max_paths_per_pair);
      if (alts.empty()) continue;
      for (const StructuralPath& sp : alts) {
        p.max_alts.push_back(build_form(sp, setup_time_));
      }
      p.max_form = p.max_alts.front();
      p.min_form = build_form(graph.min_path(cone, s, t), 0.0);
      pairs_.push_back(std::move(p));
    }
  }
  critical_ = crit;

  // Pass 2: background pairs — discard statically safe ones, promote others.
  const double threshold = options_.static_discard_fraction * critical_;
  for (const StaticCandidate& c : background) {
    // Conservative sigma bound without path extraction: systematic fraction
    // of the mean (fully correlated gates) plus mismatch margin.
    const double sigma_bound = 0.2 * c.mean * options_.random_inflation;
    if (c.mean + 6.0 * sigma_bound < threshold) {
      ++discarded_pairs_;
      continue;
    }
    const auto paths = graph.near_critical_paths(
        c.src, c.dst, options_.slack_window_ps, 1);
    if (!paths.empty()) {
      static_forms_.push_back(build_form(paths.front(), setup_time_));
    }
  }

  // Inflation is applied after all forms exist (it needs base variances).
  if (options_.random_inflation > 1.0) {
    for (MonitoredPair& p : pairs_) {
      for (DelayForm& f : p.max_alts) apply_inflation(f);
      p.max_form = p.max_alts.front();
      apply_inflation(p.min_form);
    }
    for (DelayForm& f : static_forms_) apply_inflation(f);
  }
}

void CircuitModel::apply_inflation(DelayForm& f) const {
  const double k = options_.random_inflation;
  const double base = sparse_dot(f.loading, f.loading) + f.mismatch_var;
  f.extra_indep_var = (k * k - 1.0) * base;
}

int CircuitModel::mismatch_slot(int cell_id) {
  const auto it = slot_of_cell_.find(cell_id);
  if (it != slot_of_cell_.end()) return it->second;
  const int slot = static_cast<int>(slot_var_.size());
  const double s =
      variation_.mismatch_sigma(netlist_->cell(cell_id).type);
  slot_var_.push_back(s * s);
  slot_of_cell_.emplace(cell_id, slot);
  return slot;
}

DelayForm CircuitModel::build_form(const StructuralPath& path,
                                   double terminal_margin) {
  DelayForm f;
  f.mean = path.nominal_delay + terminal_margin;
  // The launching FF's clk->Q stage varies too.
  SparseLoading acc = variation_.gate_loading(
      netlist::CellType::kDff, netlist_->cell(path.src_ff).position);
  f.mismatch_slots.push_back(mismatch_slot(path.src_ff));
  f.mismatch_var = slot_var_[static_cast<std::size_t>(f.mismatch_slots.back())];
  for (int g : path.gates) {
    const netlist::Cell& cell = netlist_->cell(g);
    accumulate(acc, variation_.gate_loading(cell.type, cell.position));
    const int slot = mismatch_slot(g);
    f.mismatch_slots.push_back(slot);
    f.mismatch_var += slot_var_[static_cast<std::size_t>(slot)];
  }
  std::sort(f.mismatch_slots.begin(), f.mismatch_slots.end());
  f.loading = std::move(acc);
  return f;
}

int CircuitModel::buffer_index(int ff) const {
  const auto it = buffer_index_.find(ff);
  return it == buffer_index_.end() ? -1 : it->second;
}

std::vector<double> CircuitModel::max_means() const {
  std::vector<double> out(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) out[i] = pairs_[i].max_form.mean;
  return out;
}

std::vector<double> CircuitModel::max_sigmas() const {
  std::vector<double> out(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    out[i] = pairs_[i].max_form.sigma();
  }
  return out;
}

double CircuitModel::form_cov(const DelayForm& a, const DelayForm& b) const {
  double cov = sparse_dot(a.loading, b.loading);
  // Shared-gate mismatch (paths reusing trunk gates are correlated beyond
  // the spatial factors).
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.mismatch_slots.size() && j < b.mismatch_slots.size()) {
    if (a.mismatch_slots[i] < b.mismatch_slots[j]) {
      ++i;
    } else if (b.mismatch_slots[j] < a.mismatch_slots[i]) {
      ++j;
    } else {
      cov += slot_var_[static_cast<std::size_t>(a.mismatch_slots[i])];
      ++i;
      ++j;
    }
  }
  return cov;
}

double CircuitModel::max_cov(std::size_t i, std::size_t j) const {
  double cov = form_cov(pairs_[i].max_form, pairs_[j].max_form);
  if (i == j) cov += pairs_[i].max_form.extra_indep_var;
  return cov;
}

linalg::Matrix CircuitModel::max_covariance(std::size_t threads) const {
  const std::size_t n = pairs_.size();
  linalg::Matrix cov(n, n);
  // Tiled upper-triangle fill through the kernel layer: tiles of the
  // triangle fan out over the shared pool and each tile mirrors its block
  // locally (better write locality than the former long-stride per-row
  // mirroring). Every cell is a pure function of the model, so the matrix
  // is bit-identical for any worker count. Small matrices stay serial —
  // the per-cell work is too cheap to amortize scheduling below ~256 rows.
  linalg::kernels::symmetric_fill(
      cov, linalg::kernels::KernelOptions{threads}, /*serial_below=*/256,
      [&](std::size_t i, std::size_t j) { return max_cov(i, j); });
  return cov;
}

void CircuitModel::draw_deviates(stats::Rng& rng, SampleWorkspace& ws) const {
  variation_.sample_factors(rng, ws.factors);
  ws.mismatch.resize(slot_var_.size());
  for (std::size_t s = 0; s < slot_var_.size(); ++s) {
    ws.mismatch[s] = rng.normal(0.0, std::sqrt(slot_var_[s]));
  }
}

double CircuitModel::eval_form(const DelayForm& f, const SampleWorkspace& ws,
                               stats::Rng& rng) const {
  double d = f.mean + sparse_apply(f.loading, ws.factors);
  // Mismatch slots are sorted but may repeat across forms; sum directly.
  for (int slot : f.mismatch_slots) {
    d += ws.mismatch[static_cast<std::size_t>(slot)];
  }
  if (f.extra_indep_var > 0.0) {
    d += rng.normal(0.0, std::sqrt(f.extra_indep_var));
  }
  return d;
}

void CircuitModel::discard_form_draw(const DelayForm& f,
                                     stats::Rng& rng) const {
  // Keep the stream aligned with a full sample_chip when the evaluation
  // itself is skipped: under the Fig-7 inflation every form consumes one
  // independent deviate in evaluation order.
  if (f.extra_indep_var > 0.0) (void)rng.normal();
}

Chip CircuitModel::sample_chip(stats::Rng& rng) const {
  SampleWorkspace ws;
  return sample_chip(rng, ws);
}

Chip CircuitModel::sample_chip(stats::Rng& rng, SampleWorkspace& ws) const {
  draw_deviates(rng, ws);
  Chip chip;
  chip.max_delay.resize(pairs_.size());
  chip.min_delay.resize(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    double worst = -std::numeric_limits<double>::infinity();
    for (const DelayForm& f : pairs_[i].max_alts) {
      worst = std::max(worst, eval_form(f, ws, rng));
    }
    chip.max_delay[i] = worst;
    chip.min_delay[i] = eval_form(pairs_[i].min_form, ws, rng);
  }
  chip.static_delay.resize(static_forms_.size());
  for (std::size_t i = 0; i < static_forms_.size(); ++i) {
    chip.static_delay[i] = eval_form(static_forms_[i], ws, rng);
  }
  return chip;
}

double CircuitModel::sample_required_period(stats::Rng& rng,
                                            SampleWorkspace& ws) const {
  draw_deviates(rng, ws);
  double worst = 0.0;
  for (const MonitoredPair& pair : pairs_) {
    for (const DelayForm& f : pair.max_alts) {
      worst = std::max(worst, eval_form(f, ws, rng));
    }
    discard_form_draw(pair.min_form, rng);
  }
  for (const DelayForm& f : static_forms_) {
    worst = std::max(worst, eval_form(f, ws, rng));
  }
  return worst;
}

void CircuitModel::sample_min_delays(stats::Rng& rng, SampleWorkspace& ws,
                                     std::vector<double>& min_out) const {
  draw_deviates(rng, ws);
  min_out.resize(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    for (const DelayForm& f : pairs_[i].max_alts) {
      discard_form_draw(f, rng);
    }
    min_out[i] = eval_form(pairs_[i].min_form, ws, rng);
  }
  for (const DelayForm& f : static_forms_) discard_form_draw(f, rng);
}

}  // namespace effitest::timing
