#include "timing/ssta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace effitest::timing {

double CanonicalDelay::sigma() const { return std::sqrt(variance()); }

double CanonicalDelay::quantile(double q) const {
  return mean + stats::normal_quantile(q) * sigma();
}

double canonical_cov(const CanonicalDelay& a, const CanonicalDelay& b) {
  return sparse_dot(a.loading, b.loading);
}

CanonicalDelay canonical_sum(const CanonicalDelay& a, const CanonicalDelay& b) {
  CanonicalDelay out;
  out.mean = a.mean + b.mean;
  out.loading = a.loading;
  accumulate(out.loading, b.loading);
  out.indep_var = a.indep_var + b.indep_var;
  return out;
}

CanonicalDelay canonical_shift(CanonicalDelay a, double offset) {
  a.mean += offset;
  return a;
}

CanonicalDelay canonical_max(const CanonicalDelay& a, const CanonicalDelay& b) {
  const double va = a.variance();
  const double vb = b.variance();
  const double cov = canonical_cov(a, b);
  const double theta2 = std::max(va + vb - 2.0 * cov, 0.0);
  const double theta = std::sqrt(theta2);

  // Degenerate case: (nearly) perfectly correlated with equal variance —
  // the max is whichever has the larger mean.
  if (theta < 1e-12) {
    return a.mean >= b.mean ? a : b;
  }

  const double alpha = (a.mean - b.mean) / theta;
  const double phi_a = stats::normal_cdf(alpha);
  const double phi_b = 1.0 - phi_a;
  const double pdf = stats::normal_pdf(alpha);

  CanonicalDelay out;
  out.mean = a.mean * phi_a + b.mean * phi_b + theta * pdf;
  const double second_moment = (a.mean * a.mean + va) * phi_a +
                               (b.mean * b.mean + vb) * phi_b +
                               (a.mean + b.mean) * theta * pdf;
  const double var = std::max(second_moment - out.mean * out.mean, 0.0);

  // Blend the loadings by the tie probability (standard canonical-form
  // reconstruction, ref. [17]); whatever variance the blended loadings do
  // not explain becomes an independent term.
  out.loading = a.loading;
  for (auto& [idx, w] : out.loading) w *= phi_a;
  SparseLoading scaled_b = b.loading;
  for (auto& [idx, w] : scaled_b) w *= phi_b;
  accumulate(out.loading, scaled_b);
  const double explained = sparse_dot(out.loading, out.loading);
  if (explained > var && explained > 0.0) {
    // Rescale so the total variance is matched exactly.
    const double scale = std::sqrt(var / explained);
    for (auto& [idx, w] : out.loading) w *= scale;
    out.indep_var = 0.0;
  } else {
    out.indep_var = var - explained;
  }
  return out;
}

CanonicalDelay statistical_max(std::span<const CanonicalDelay> forms) {
  if (forms.empty()) {
    throw std::invalid_argument("statistical_max: empty input");
  }
  std::vector<const CanonicalDelay*> order;
  order.reserve(forms.size());
  for (const CanonicalDelay& f : forms) order.push_back(&f);
  std::sort(order.begin(), order.end(),
            [](const CanonicalDelay* x, const CanonicalDelay* y) {
              return x->mean > y->mean;
            });
  CanonicalDelay acc = *order.front();
  for (std::size_t i = 1; i < order.size(); ++i) {
    // Skip forms that cannot plausibly define the max (4.5 sigma below).
    const CanonicalDelay& f = *order[i];
    if (f.mean + 4.5 * f.sigma() < acc.mean - 4.5 * acc.sigma()) continue;
    acc = canonical_max(acc, f);
  }
  return acc;
}

CanonicalDelay ssta_required_period(const netlist::Netlist& netlist,
                                    const netlist::CellLibrary& library,
                                    const VariationModel& variation) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t n = netlist.num_cells();

  // Canonical gate delay per cell (systematic loading + mismatch).
  const auto gate_delay = [&](int id) {
    const netlist::Cell& c = netlist.cell(id);
    CanonicalDelay d;
    d.mean = library.timing(c.type).nominal_delay_ps;
    d.loading = variation.gate_loading(c.type, c.position);
    const double ms = variation.mismatch_sigma(c.type);
    d.indep_var = ms * ms;
    return d;
  };

  // Arrival forms; unreachable cells are marked by mean == -inf.
  std::vector<CanonicalDelay> arrival(n);
  for (auto& a : arrival) a.mean = kNegInf;
  for (int ff : netlist.flip_flops()) {
    arrival[static_cast<std::size_t>(ff)] = gate_delay(ff);  // clk->Q
  }

  for (int id : netlist.topological_order()) {
    const netlist::Cell& c = netlist.cell(id);
    if (!netlist::is_combinational(c.type)) continue;
    CanonicalDelay merged;
    merged.mean = kNegInf;
    for (int u : c.fanins) {
      const CanonicalDelay& au = arrival[static_cast<std::size_t>(u)];
      if (au.mean == kNegInf) continue;
      merged = merged.mean == kNegInf ? au : canonical_max(merged, au);
    }
    if (merged.mean == kNegInf) continue;
    arrival[static_cast<std::size_t>(id)] = canonical_sum(merged, gate_delay(id));
  }

  CanonicalDelay required;
  required.mean = kNegInf;
  const double setup = library.dff_setup_ps();
  for (int ff : netlist.flip_flops()) {
    const netlist::Cell& c = netlist.cell(ff);
    if (c.fanins.empty()) continue;
    const CanonicalDelay& d = arrival[static_cast<std::size_t>(c.fanins[0])];
    if (d.mean == kNegInf) continue;
    const CanonicalDelay captured = canonical_shift(d, setup);
    required = required.mean == kNegInf ? captured
                                        : canonical_max(required, captured);
  }
  if (required.mean == kNegInf) {
    throw netlist::NetlistError(
        "ssta_required_period: no register-to-register path");
  }
  return required;
}

CanonicalDelay ssta_required_period(const CircuitModel& model) {
  std::vector<CanonicalDelay> forms;
  forms.reserve(model.num_pairs());
  for (const MonitoredPair& p : model.pairs()) {
    for (const DelayForm& f : p.max_alts) {
      CanonicalDelay d;
      d.mean = f.mean;
      d.loading = f.loading;
      d.indep_var = f.mismatch_var + f.extra_indep_var;
      forms.push_back(std::move(d));
    }
  }
  if (forms.empty()) {
    throw std::invalid_argument("ssta_required_period: model has no pairs");
  }
  return statistical_max(forms);
}

}  // namespace effitest::timing
