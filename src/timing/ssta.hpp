#pragma once
// Block-based statistical static timing analysis (SSTA).
//
// The paper builds on the SSTA literature (its refs. [10, 17]): delays are
// first-order Gaussian forms over shared variation factors, propagated
// through the timing graph with SUM along edges and Clark's moment-matching
// approximation for MAX at merge points. This module provides:
//
//  * CanonicalDelay — mean + sparse factor loadings + independent variance,
//  * canonical sum / max (Clark) / covariance / quantile operations,
//  * whole-circuit propagation producing the distribution of the *untuned
//    required clock period* (max register-to-register delay + setup).
//
// The analytic distribution cross-checks the Monte-Carlo estimator
// (core::period_quantile) used to calibrate T1/T2 — see the ssta tests and
// the bench_ablation_flow output.
//
// Known approximation limits (standard for block-based SSTA): Clark's max of
// Gaussians is itself treated as Gaussian, and per-gate mismatch that is
// shared between reconvergent branches is treated as independent at merges.

#include <span>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "timing/graph.hpp"
#include "timing/model.hpp"
#include "timing/variation.hpp"

namespace effitest::timing {

/// First-order Gaussian delay form: mean + sum(loading_i * z_i) + eps with
/// z ~ iid N(0,1) shared factors and eps ~ N(0, indep_var) private.
struct CanonicalDelay {
  double mean = 0.0;
  SparseLoading loading;
  double indep_var = 0.0;

  [[nodiscard]] double variance() const {
    return sparse_dot(loading, loading) + indep_var;
  }
  [[nodiscard]] double sigma() const;
  /// q-quantile of the Gaussian form.
  [[nodiscard]] double quantile(double q) const;
};

/// Covariance of two canonical forms (shared factors only).
[[nodiscard]] double canonical_cov(const CanonicalDelay& a,
                                   const CanonicalDelay& b);

/// a + b where the independent parts are uncorrelated.
[[nodiscard]] CanonicalDelay canonical_sum(const CanonicalDelay& a,
                                           const CanonicalDelay& b);

/// Add a deterministic offset.
[[nodiscard]] CanonicalDelay canonical_shift(CanonicalDelay a, double offset);

/// Clark's max approximation of two (correlated) Gaussian forms: moment-
/// matched mean/variance, loadings blended by the tie probability Phi(alpha).
[[nodiscard]] CanonicalDelay canonical_max(const CanonicalDelay& a,
                                           const CanonicalDelay& b);

/// Statistical max over many forms (sequential Clark folding, largest means
/// first for numerical stability).
[[nodiscard]] CanonicalDelay statistical_max(
    std::span<const CanonicalDelay> forms);

/// Whole-circuit block-based SSTA: propagate canonical arrivals from every
/// flip-flop clock pin through the combinational network and return the
/// distribution of the untuned required clock period
/// (max over all captured register-to-register delays, setup included).
/// Throws if the netlist has no register-to-register path.
[[nodiscard]] CanonicalDelay ssta_required_period(
    const netlist::Netlist& netlist, const netlist::CellLibrary& library,
    const VariationModel& variation);

/// Same distribution computed from an already-built CircuitModel's monitored
/// and promoted background pairs (cheaper; used for cross-checks).
[[nodiscard]] CanonicalDelay ssta_required_period(const CircuitModel& model);

}  // namespace effitest::timing
