#pragma once
// Static timing analysis over the gate-level netlist.
//
// Provides the structural timing facts EffiTest needs:
//  * nominal max/min delays between every connected flip-flop pair, and
//  * explicit near-critical path enumeration (gate sequences) per pair,
//    which the statistical model turns into correlated delay forms.
//
// Delay bookkeeping: a register-to-register path delay is
//   clk->Q(src FF) + sum of combinational gate delays;
// setup/hold times of the capturing FF are added by the model layer
// (D_ij = d_ij + s_j per the paper's eq. 1 discussion).

#include <cstddef>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"

namespace effitest::timing {

/// A structural register-to-register path.
struct StructuralPath {
  int src_ff = -1;
  int dst_ff = -1;
  /// Combinational gate ids in propagation order (excludes both FFs).
  std::vector<int> gates;
  /// Nominal delay: clk->Q + gate delays (no setup/hold).
  double nominal_delay = 0.0;
};

/// Max/min nominal delay summary for one connected FF pair.
struct PairDelay {
  int src_ff = -1;
  int dst_ff = -1;
  double max_delay = 0.0;  ///< longest-path nominal (clk->Q + gates)
  double min_delay = 0.0;  ///< shortest-path nominal (clk->Q + gates)
};

class TimingGraph {
 public:
  /// Arrival times across one launching FF's combinational cone.
  struct ConeArrival {
    // Per cell: -inf when unreachable from the source FF.
    std::vector<double> max_arrival;
    std::vector<double> min_arrival;
  };

  TimingGraph(const netlist::Netlist& netlist,
              const netlist::CellLibrary& library);

  [[nodiscard]] const netlist::Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] const netlist::CellLibrary& library() const { return *library_; }

  /// Nominal delay of one cell (0 for inputs/outputs; clk->Q for DFFs).
  [[nodiscard]] double cell_delay(int id) const {
    return delays_[static_cast<std::size_t>(id)];
  }

  /// All connected FF pairs with nominal max/min delays (single STA sweep per
  /// launching FF, restricted to its fanout cone).
  [[nodiscard]] std::vector<PairDelay> all_pair_delays() const;

  /// Forward sweep from one launching FF across its combinational cone.
  /// Reusable by the per-pair queries below, which also have convenience
  /// overloads that sweep internally.
  [[nodiscard]] ConeArrival sweep(int src_ff) const;

  /// Enumerate, for the given FF pair, every path whose nominal delay is
  /// within `slack_window` of the pair's max delay, longest first, capped at
  /// `max_paths`. Always contains the critical path.
  [[nodiscard]] std::vector<StructuralPath> near_critical_paths(
      int src_ff, int dst_ff, double slack_window, std::size_t max_paths) const;
  [[nodiscard]] std::vector<StructuralPath> near_critical_paths(
      const ConeArrival& cone, int src_ff, int dst_ff, double slack_window,
      std::size_t max_paths) const;

  /// The single shortest structural path for the pair (hold analysis).
  [[nodiscard]] StructuralPath min_path(int src_ff, int dst_ff) const;
  [[nodiscard]] StructuralPath min_path(const ConeArrival& cone, int src_ff,
                                        int dst_ff) const;

  /// Nominal critical delay over all FF pairs (ignores setup margins).
  [[nodiscard]] double nominal_critical_delay() const;

 private:
  const netlist::Netlist* netlist_;
  const netlist::CellLibrary* library_;
  std::vector<double> delays_;
  std::vector<int> topo_order_;
  std::vector<std::vector<int>> fanouts_;
};

}  // namespace effitest::timing
