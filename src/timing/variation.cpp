#include "timing/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace effitest::timing {

void accumulate(SparseLoading& into, const SparseLoading& add) {
  SparseLoading out;
  out.reserve(into.size() + add.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() && j < add.size()) {
    if (into[i].first < add[j].first) {
      out.push_back(into[i++]);
    } else if (add[j].first < into[i].first) {
      out.push_back(add[j++]);
    } else {
      out.emplace_back(into[i].first, into[i].second + add[j].second);
      ++i;
      ++j;
    }
  }
  while (i < into.size()) out.push_back(into[i++]);
  while (j < add.size()) out.push_back(add[j++]);
  into = std::move(out);
}

double sparse_dot(const SparseLoading& a, const SparseLoading& b) {
  double acc = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (b[j].first < a[i].first) {
      ++j;
    } else {
      acc += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return acc;
}

double sparse_apply(const SparseLoading& a, std::span<const double> z) {
  double acc = 0.0;
  for (const auto& [idx, w] : a) acc += w * z[static_cast<std::size_t>(idx)];
  return acc;
}

VariationModel::VariationModel(VariationParams params,
                               const netlist::CellLibrary& library)
    : params_(params), library_(&library) {
  if (params_.grid_levels < 0 || params_.grid_levels > 8) {
    throw std::invalid_argument("VariationModel: grid_levels out of range");
  }
  if (params_.global_corr < 0.0 || params_.global_corr > 1.0) {
    throw std::invalid_argument("VariationModel: global_corr outside [0,1]");
  }
  factors_per_param_ = 1;  // global
  for (int l = 1; l <= params_.grid_levels; ++l) {
    factors_per_param_ += static_cast<std::size_t>(1) << (2 * l);  // 4^l
  }
  num_factors_ = 3 * factors_per_param_;
  w_global_ = std::sqrt(params_.global_corr);
  const double rest = 1.0 - params_.global_corr;
  w_level_ = params_.grid_levels > 0
                 ? std::sqrt(rest / static_cast<double>(params_.grid_levels))
                 : 0.0;
  // With zero grid levels all non-global mass would be lost; fold it into the
  // global factor so total parameter variance stays sigma_p^2.
  if (params_.grid_levels == 0) w_global_ = 1.0;
}

int VariationModel::cell_index(int level, netlist::Point pos) const {
  const int side = 1 << level;
  int cx = static_cast<int>(pos.x * side);
  int cy = static_cast<int>(pos.y * side);
  cx = std::clamp(cx, 0, side - 1);
  cy = std::clamp(cy, 0, side - 1);
  return cy * side + cx;
}

SparseLoading VariationModel::gate_loading(netlist::CellType type,
                                           netlist::Point pos) const {
  const netlist::CellTiming& t = library_->timing(type);
  if (t.nominal_delay_ps <= 0.0) return {};
  const double sens[3] = {t.sens_length, t.sens_tox, t.sens_vth};
  const double sigma[3] = {params_.sigma_length, params_.sigma_tox,
                           params_.sigma_vth};
  SparseLoading out;
  out.reserve(3 * static_cast<std::size_t>(params_.grid_levels + 1));
  for (int p = 0; p < 3; ++p) {
    // Delay deviation per unit of this parameter's factors (ps).
    const double scale = t.nominal_delay_ps * sens[p] * sigma[p];
    if (scale == 0.0) continue;
    const int base = p * static_cast<int>(factors_per_param_);
    out.emplace_back(base, scale * w_global_);
    int offset = 1;
    for (int l = 1; l <= params_.grid_levels; ++l) {
      out.emplace_back(base + offset + cell_index(l, pos), scale * w_level_);
      offset += 1 << (2 * l);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double VariationModel::mismatch_sigma(netlist::CellType type) const {
  return params_.mismatch_frac * systematic_sigma(type);
}

double VariationModel::systematic_sigma(netlist::CellType type) const {
  const netlist::CellTiming& t = library_->timing(type);
  const double v =
      t.sens_length * params_.sigma_length * t.sens_length * params_.sigma_length +
      t.sens_tox * params_.sigma_tox * t.sens_tox * params_.sigma_tox +
      t.sens_vth * params_.sigma_vth * t.sens_vth * params_.sigma_vth;
  return t.nominal_delay_ps * std::sqrt(v);
}

std::vector<double> VariationModel::sample_factors(stats::Rng& rng) const {
  std::vector<double> z;
  sample_factors(rng, z);
  return z;
}

void VariationModel::sample_factors(stats::Rng& rng,
                                    std::vector<double>& out) const {
  out.resize(num_factors_);
  for (double& v : out) v = rng.normal();
}

}  // namespace effitest::timing
