#include "scenario/circuit_catalog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "netlist/bench_writer.hpp"
#include "timing/graph.hpp"

namespace effitest::scenario {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

/// Short, locale-independent rendering of a scale factor ("2", "0.5").
std::string format_scale(double scale) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", scale);
  return buf;
}

std::size_t scaled_count(std::size_t value, double scale,
                         std::size_t floor_value) {
  const double scaled = std::round(static_cast<double>(value) * scale);
  return std::max(floor_value, static_cast<std::size_t>(scaled));
}

}  // namespace

BufferPolicy buffer_policy_from(const std::string& name) {
  if (name == "hub-count") return BufferPolicy::kHubCount;
  if (name == "worst-delay") return BufferPolicy::kWorstDelay;
  throw std::invalid_argument("unknown buffer policy \"" + name +
                              "\" (valid: hub-count worst-delay)");
}

const char* to_string(BufferPolicy policy) {
  return policy == BufferPolicy::kHubCount ? "hub-count" : "worst-delay";
}

std::vector<int> pick_buffers(const netlist::Netlist& netlist,
                              const netlist::CellLibrary& library,
                              std::size_t count, BufferPolicy policy) {
  const timing::TimingGraph graph(netlist, library);
  const auto pairs = graph.all_pair_delays();
  // Score every flip-flop as (near-critical incidence, worst delay) or
  // (worst delay only); the lexicographic sort below serves both policies.
  std::map<int, std::pair<int, double>> score;  // ff -> (count, worst)
  if (policy == BufferPolicy::kHubCount) {
    double crit = 0.0;
    for (const auto& pd : pairs) crit = std::max(crit, pd.max_delay);
    const double threshold = 0.85 * crit;
    for (const auto& pd : pairs) {
      if (pd.max_delay < threshold) continue;
      for (int ff : {pd.src_ff, pd.dst_ff}) {
        auto& [cnt, worst] = score[ff];
        ++cnt;
        worst = std::max(worst, pd.max_delay);
      }
    }
  } else {
    for (const auto& pd : pairs) {
      for (int ff : {pd.src_ff, pd.dst_ff}) {
        auto& [cnt, worst] = score[ff];
        worst = std::max(worst, pd.max_delay);
      }
    }
  }
  std::vector<std::pair<std::pair<int, double>, int>> ranked;
  ranked.reserve(score.size());
  for (const auto& [ff, s] : score) ranked.emplace_back(s, ff);
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<int> out;
  for (std::size_t i = 0; i < ranked.size() && out.size() < count; ++i) {
    out.push_back(ranked[i].second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

netlist::GeneratorSpec scaled_paper_spec(const std::string& base, double scale,
                                         std::optional<std::uint64_t> seed) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("scaled circuit: scale must be > 0, got " +
                                format_scale(scale));
  }
  netlist::GeneratorSpec spec = netlist::paper_benchmark_spec(base);
  // Bound the scaled counts before the double->size_t casts below: an
  // absurd factor must be a clear error, not an overflowing cast.
  constexpr double kMaxScaledCells = 1e8;
  const std::size_t largest =
      std::max({spec.num_flip_flops, spec.num_gates, spec.num_buffers,
                spec.num_critical_paths});
  if (static_cast<double>(largest) * scale > kMaxScaledCells) {
    throw std::invalid_argument("scaled circuit: " + base + " x" +
                                format_scale(scale) +
                                " exceeds 1e8 cells; lower the scale");
  }
  spec.name = base + "@x" + format_scale(scale);
  spec.num_flip_flops = scaled_count(spec.num_flip_flops, scale, 4);
  spec.num_gates = scaled_count(spec.num_gates, scale, 8);
  spec.num_buffers = std::min(scaled_count(spec.num_buffers, scale, 1),
                              spec.num_flip_flops);
  spec.num_critical_paths = scaled_count(spec.num_critical_paths, scale, 1);
  if (seed) spec.seed = *seed;
  return spec;
}

PreparedCircuit::PreparedCircuit(
    std::string name_in, netlist::Netlist netlist_in,
    netlist::CellLibrary library_in, std::vector<int> buffered_ffs_in,
    const timing::ModelOptions& model_options,
    std::vector<std::pair<int, int>> critical_edges_in,
    std::vector<std::pair<std::size_t, std::size_t>> exclusive_edge_pairs_in)
    : name(std::move(name_in)),
      netlist(std::move(netlist_in)),
      library(std::move(library_in)),
      buffered_ffs(std::move(buffered_ffs_in)),
      model(netlist, library, buffered_ffs, model_options),
      problem(model),
      exclusions(core::map_edge_exclusions(model, critical_edges_in,
                                           exclusive_edge_pairs_in)) {}

std::shared_ptr<CircuitCatalog> CircuitCatalog::make_paper() {
  auto catalog = std::make_shared<CircuitCatalog>();
  for (const netlist::GeneratorSpec& spec : netlist::paper_benchmark_specs()) {
    catalog->add(spec.name, PaperCircuit{spec.name, std::nullopt});
  }
  for (const netlist::GeneratorSpec& spec :
       netlist::extended_benchmark_specs()) {
    catalog->add(spec.name, PaperCircuit{spec.name, std::nullopt});
  }
  return catalog;
}

std::shared_ptr<const CircuitCatalog> CircuitCatalog::shared_paper() {
  static const std::shared_ptr<const CircuitCatalog> instance = make_paper();
  return instance;
}

void CircuitCatalog::add(std::string name, CircuitSpec spec) {
  if (name.empty()) {
    throw std::invalid_argument("CircuitCatalog: circuit name is empty");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (specs_.count(name) != 0) {
    throw std::invalid_argument("CircuitCatalog: circuit \"" + name +
                                "\" is already registered");
  }
  order_.push_back(name);
  specs_.emplace(std::move(name), std::move(spec));
}

bool CircuitCatalog::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return specs_.count(name) != 0;
}

std::vector<std::string> CircuitCatalog::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

CircuitSpec CircuitCatalog::spec(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = specs_.find(name);
  if (it == specs_.end()) throw std::invalid_argument(unknown_message(name));
  return it->second;
}

std::string CircuitCatalog::describe(const std::string& name) const {
  return std::visit(
      Overloaded{
          [](const PaperCircuit& p) {
            std::string out = "paper benchmark " + p.benchmark;
            if (p.seed) out += " (seed " + std::to_string(*p.seed) + ")";
            return out;
          },
          [](const ScaledCircuit& s) {
            std::string out =
                "scaled " + s.base + " x" + format_scale(s.scale);
            if (s.seed) out += " (seed " + std::to_string(*s.seed) + ")";
            return out;
          },
          [](const netlist::GeneratorSpec& g) {
            return "generator (ns=" + std::to_string(g.num_flip_flops) +
                   " ng=" + std::to_string(g.num_gates) +
                   " nb=" + std::to_string(g.num_buffers) +
                   " np=" + std::to_string(g.num_critical_paths) +
                   " seed=" + std::to_string(g.seed) + ")";
          },
          [](const BenchCircuit& b) {
            std::string out = ".bench import " + b.path + " (buffers=";
            out += b.num_buffers ? std::to_string(*b.num_buffers)
                                 : std::string("auto");
            out += ", policy=";
            out += to_string(b.policy);
            out += ")";
            return out;
          },
      },
      spec(name));
}

std::string CircuitCatalog::unknown_message(const std::string& name) const {
  // Callers hold mutex_ (order_ is append-only under it).
  std::string msg = "unknown circuit \"" + name + "\" (catalog:";
  for (const std::string& n : order_) msg += ' ' + n;
  msg += ')';
  return msg;
}

std::shared_ptr<const PreparedCircuit> CircuitCatalog::resolve(
    const std::string& name, double random_inflation) const {
  char key_suffix[48];
  std::snprintf(key_suffix, sizeof(key_suffix), "\x1f%.17g", random_inflation);
  const std::string key = name + key_suffix;

  std::shared_future<Prepared> future;
  std::promise<Prepared> promise;
  CircuitSpec spec;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto sit = specs_.find(name);
    if (sit == specs_.end()) {
      throw std::invalid_argument("CircuitCatalog: " + unknown_message(name));
    }
    const auto cit = cache_.find(key);
    if (cit != cache_.end()) {
      future = cit->second;
    } else {
      future = promise.get_future().share();
      cache_.emplace(key, future);
      spec = sit->second;
      builder = true;
    }
  }
  if (builder) {
    try {
      promise.set_value(build(name, spec, random_inflation));
    } catch (...) {
      // Evict first so a later resolve can retry (e.g. the .bench file
      // appears); every caller already waiting still sees the exception.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        cache_.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

CircuitCatalog::Prepared CircuitCatalog::build(const std::string& name,
                                               const CircuitSpec& spec,
                                               double random_inflation) const {
  timing::ModelOptions model_options;
  model_options.random_inflation = random_inflation;

  const auto from_generated = [&](const netlist::GeneratorSpec& g) {
    netlist::GeneratedCircuit gen = netlist::generate_circuit(g);
    return std::make_shared<const PreparedCircuit>(
        name, std::move(gen.netlist), netlist::CellLibrary::standard(),
        std::move(gen.buffered_ffs), model_options,
        std::move(gen.critical_edges), std::move(gen.exclusive_edge_pairs));
  };

  return std::visit(
      Overloaded{
          [&](const PaperCircuit& p) {
            netlist::GeneratorSpec g = netlist::paper_benchmark_spec(
                p.benchmark);
            if (p.seed) g.seed = *p.seed;
            return from_generated(g);
          },
          [&](const ScaledCircuit& s) {
            return from_generated(scaled_paper_spec(s.base, s.scale, s.seed));
          },
          [&](const netlist::GeneratorSpec& g) { return from_generated(g); },
          [&](const BenchCircuit& b) {
            netlist::Netlist nl =
                netlist::parse_bench_file_with_placement(b.path);
            netlist::CellLibrary library = netlist::CellLibrary::standard();
            const std::size_t nb = b.num_buffers.value_or(
                std::max<std::size_t>(1, nl.num_flip_flops() / 100));
            std::vector<int> buffers =
                pick_buffers(nl, library, nb, b.policy);
            return std::make_shared<const PreparedCircuit>(
                name, std::move(nl), std::move(library), std::move(buffers),
                model_options);
          },
      },
      spec);
}

}  // namespace effitest::scenario
