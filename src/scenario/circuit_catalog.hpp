#pragma once
// Circuit provisioning: the one place every consumer gets a circuit from.
//
// The paper evaluates EffiTest across eight ISCAS89/industrial circuits
// (Table 1); historically every entry point of this repository was fused to
// the synthetic generator's hard-coded paper names, the `.bench` parser was
// reachable only from two CLI commands, and the buffer-insertion stand-in
// was duplicated between the CLI and an example. This layer makes circuit
// identity an API instead of a string switch:
//
//  * `CircuitSpec` — a sum type naming *how* to build a circuit: a paper
//    benchmark (with optional seed override), an inline
//    `netlist::GeneratorSpec`, a `.bench` file plus a buffer-insertion
//    policy, or a scaled synthetic family member for stress workloads.
//  * `PreparedCircuit` — the fully-provisioned bundle the downstream
//    pipeline consumes: netlist, cell library, `timing::CircuitModel`,
//    `core::Problem` and the logic-masking exclusions, with stable
//    addresses (the model and problem point into the bundle, so the type
//    is neither copyable nor movable — it lives behind a shared_ptr).
//  * `CircuitCatalog` — a thread-safe name -> spec registry that resolves
//    names into memoized `shared_ptr<const PreparedCircuit>` bundles.
//    Resolution is a pure function of (spec, random_inflation): two
//    resolves of the same key return the *same* shared_ptr, and concurrent
//    resolves of the same key build exactly once (the loser waits).
//    Campaigns, the TunerService and all CLI subcommands route through
//    this one construction path; the paper path performs exactly the
//    historical operations, so golden metrics are unchanged (DESIGN.md
//    §11).

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/problem.hpp"
#include "netlist/cell.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "timing/model.hpp"

namespace effitest::scenario {

/// How tuning buffers are chosen for circuits that do not carry their own
/// buffer set (.bench imports; generated circuits embed theirs). Both are
/// stand-ins for the paper's refs. [3, 12].
enum class BufferPolicy : std::uint8_t {
  /// Rank flip-flops by how many near-critical (>= 85% of the critical
  /// delay) paths converge at or leave them — the hubs of the paper's
  /// Fig. 5 — breaking ties by the worst incident delay.
  kHubCount,
  /// Rank flip-flops by the single worst incident path delay.
  kWorstDelay,
};

/// Parse "hub-count" / "worst-delay" (throws std::invalid_argument listing
/// the valid names) and the inverse.
[[nodiscard]] BufferPolicy buffer_policy_from(const std::string& name);
[[nodiscard]] const char* to_string(BufferPolicy policy);

/// Pick `count` flip-flops to carry tuning buffers under `policy`.
/// Deterministic; result is sorted by cell id.
[[nodiscard]] std::vector<int> pick_buffers(const netlist::Netlist& netlist,
                                            const netlist::CellLibrary& library,
                                            std::size_t count,
                                            BufferPolicy policy =
                                                BufferPolicy::kHubCount);

/// One of the eight Table-1 benchmarks, optionally reseeded.
struct PaperCircuit {
  std::string benchmark;  ///< s9234, s13207, ... (netlist::paper_benchmark_spec)
  /// nullopt keeps the spec's historical seed (an explicit 0 is honored).
  std::optional<std::uint64_t> seed;
};

/// A Table-1 benchmark scaled up (stress workloads) or down (smoke tests):
/// ns/ng/nb/np are all multiplied by `scale`.
struct ScaledCircuit {
  std::string base;    ///< paper benchmark to scale
  double scale = 1.0;  ///< > 0; multiplies ns, ng, nb and np
  /// nullopt keeps the base spec's seed (an explicit 0 is honored).
  std::optional<std::uint64_t> seed;
};

/// A circuit parsed from an ISCAS89 .bench file (placement sidecar honored),
/// with tuning buffers inserted by `policy`.
struct BenchCircuit {
  std::string path;
  /// nullopt = max(1, flip_flops / 100); an explicit 0 builds the
  /// untunable baseline circuit (no monitored pairs).
  std::optional<std::size_t> num_buffers;
  BufferPolicy policy = BufferPolicy::kHubCount;
};

/// How to build a circuit. The GeneratorSpec alternative covers fully
/// inline synthetic circuits (scenario files, tests).
using CircuitSpec =
    std::variant<PaperCircuit, ScaledCircuit, netlist::GeneratorSpec,
                 BenchCircuit>;

/// The GeneratorSpec a ScaledCircuit resolves to (also useful directly:
/// bench harnesses sweeping circuit size). Throws std::invalid_argument on
/// scale <= 0 and whatever paper_benchmark_spec throws on unknown names.
[[nodiscard]] netlist::GeneratorSpec scaled_paper_spec(
    const std::string& base, double scale,
    std::optional<std::uint64_t> seed = std::nullopt);

/// Everything the downstream pipeline needs, provisioned once. `model` and
/// `problem` reference the sibling members, so the bundle is pinned in
/// place (non-copyable, non-movable) and shared behind
/// shared_ptr<const PreparedCircuit>.
struct PreparedCircuit {
  PreparedCircuit(std::string name_in, netlist::Netlist netlist_in,
                  netlist::CellLibrary library_in,
                  std::vector<int> buffered_ffs_in,
                  const timing::ModelOptions& model_options,
                  std::vector<std::pair<int, int>> critical_edges_in = {},
                  std::vector<std::pair<std::size_t, std::size_t>>
                      exclusive_edge_pairs_in = {});
  PreparedCircuit(const PreparedCircuit&) = delete;
  PreparedCircuit& operator=(const PreparedCircuit&) = delete;

  const std::string name;  ///< catalog name (not necessarily netlist name)
  const netlist::Netlist netlist;
  const netlist::CellLibrary library;
  const std::vector<int> buffered_ffs;
  const timing::CircuitModel model;
  const core::Problem problem;
  /// Logic-masking mutual exclusions mapped onto monitored-pair indices
  /// (BatchingOptions::exclusions); empty for .bench imports, which carry
  /// no masking metadata.
  const std::vector<std::pair<std::size_t, std::size_t>> exclusions;
};

/// Thread-safe name -> CircuitSpec registry with memoized resolution.
class CircuitCatalog {
 public:
  CircuitCatalog() = default;
  // The registry carries a mutex and hands out aliases into itself: pin it.
  CircuitCatalog(const CircuitCatalog&) = delete;
  CircuitCatalog& operator=(const CircuitCatalog&) = delete;

  /// Fresh mutable catalog with the eight Table-1 paper benchmarks
  /// registered under their paper names (extend with add()).
  [[nodiscard]] static std::shared_ptr<CircuitCatalog> make_paper();

  /// Process-wide shared paper catalog: consumers that do not bring their
  /// own catalog (CampaignOptions::catalog == nullptr, bench harnesses)
  /// share this instance — and therefore one construction cache.
  [[nodiscard]] static std::shared_ptr<const CircuitCatalog> shared_paper();

  /// Register a circuit. Throws std::invalid_argument on an empty or
  /// already-registered name.
  void add(std::string name, CircuitSpec spec);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// The spec registered under `name`; throws std::invalid_argument when
  /// unknown (message lists the registered names).
  [[nodiscard]] CircuitSpec spec(const std::string& name) const;
  /// One-line human description of the registered spec ("paper benchmark",
  /// ".bench import ...", ...). Computed from the spec, never resolves.
  [[nodiscard]] std::string describe(const std::string& name) const;

  /// Resolve a registered name into its provisioned bundle. Memoized on
  /// (name, random_inflation): repeated resolves return the same
  /// shared_ptr; concurrent resolves of one key construct exactly once
  /// while distinct keys construct in parallel. A construction failure
  /// (e.g. missing .bench file) propagates to every waiting caller and is
  /// evicted from the cache so a later resolve can retry. Throws
  /// std::invalid_argument for unregistered names.
  [[nodiscard]] std::shared_ptr<const PreparedCircuit> resolve(
      const std::string& name, double random_inflation = 1.0) const;

 private:
  using Prepared = std::shared_ptr<const PreparedCircuit>;

  [[nodiscard]] Prepared build(const std::string& name,
                               const CircuitSpec& spec,
                               double random_inflation) const;
  [[nodiscard]] std::string unknown_message(const std::string& name) const;

  mutable std::mutex mutex_;
  std::vector<std::string> order_;            ///< registration order
  std::map<std::string, CircuitSpec> specs_;
  mutable std::map<std::string, std::shared_future<Prepared>> cache_;
};

}  // namespace effitest::scenario
