#include "netlist/cell.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace effitest::netlist {

std::string_view to_string(CellType t) {
  switch (t) {
    case CellType::kInput: return "INPUT";
    case CellType::kOutput: return "OUTPUT";
    case CellType::kDff: return "DFF";
    case CellType::kBuf: return "BUFF";
    case CellType::kNot: return "NOT";
    case CellType::kAnd: return "AND";
    case CellType::kNand: return "NAND";
    case CellType::kOr: return "OR";
    case CellType::kNor: return "NOR";
    case CellType::kXor: return "XOR";
    case CellType::kXnor: return "XNOR";
  }
  return "?";
}

std::optional<CellType> cell_type_from_token(std::string_view token) {
  std::string upper;
  upper.reserve(token.size());
  for (char c : token) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "INPUT") return CellType::kInput;
  if (upper == "OUTPUT") return CellType::kOutput;
  if (upper == "DFF") return CellType::kDff;
  if (upper == "BUF" || upper == "BUFF") return CellType::kBuf;
  if (upper == "NOT" || upper == "INV") return CellType::kNot;
  if (upper == "AND") return CellType::kAnd;
  if (upper == "NAND") return CellType::kNand;
  if (upper == "OR") return CellType::kOr;
  if (upper == "NOR") return CellType::kNor;
  if (upper == "XOR") return CellType::kXor;
  if (upper == "XNOR") return CellType::kXnor;
  return std::nullopt;
}

CellLibrary CellLibrary::standard() {
  CellLibrary lib;
  auto set = [&lib](CellType t, double d, double sl, double st, double sv) {
    lib.timings_[static_cast<std::size_t>(t)] = CellTiming{d, sl, st, sv};
  };
  // Representative 45nm-class numbers: nominal propagation delays (ps) and
  // relative first-order sensitivities to L / tox / Vth deviations. The
  // sensitivities are calibrated so a gate's total delay sigma is ~6% of
  // nominal under the paper's parameter sigmas (15.7% / 5.3% / 4.4%), which
  // reproduces the paper's regime where the tuning range (T/8) spans about
  // two path-delay sigmas.
  set(CellType::kInput, 0.0, 0.0, 0.0, 0.0);
  set(CellType::kOutput, 0.0, 0.0, 0.0, 0.0);
  set(CellType::kDff, 12.0, 0.32, 0.28, 0.42);  // clk->Q stage
  set(CellType::kBuf, 9.0, 0.33, 0.28, 0.42);
  set(CellType::kNot, 7.0, 0.35, 0.30, 0.45);
  set(CellType::kAnd, 13.0, 0.35, 0.30, 0.45);
  set(CellType::kNand, 11.0, 0.37, 0.30, 0.47);
  set(CellType::kOr, 14.0, 0.35, 0.30, 0.45);
  set(CellType::kNor, 12.0, 0.37, 0.30, 0.47);
  set(CellType::kXor, 18.0, 0.40, 0.32, 0.50);
  set(CellType::kXnor, 18.0, 0.40, 0.32, 0.50);
  return lib;
}

const CellTiming& CellLibrary::timing(CellType t) const {
  return timings_[static_cast<std::size_t>(t)];
}

}  // namespace effitest::netlist
