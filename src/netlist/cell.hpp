#pragma once
// Cell types and the characterized cell library.
//
// The paper maps its benchmark circuits to "a library from an industry
// partner". That library is proprietary; this module provides the
// substitute: a small characterized library with nominal delays and
// first-order sensitivities to the three varying process parameters the
// paper lists (transistor length, oxide thickness, threshold voltage).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace effitest::netlist {

enum class CellType : std::uint8_t {
  kInput,   ///< primary input (zero delay source)
  kOutput,  ///< primary output marker
  kDff,     ///< D flip-flop (sequential element)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

[[nodiscard]] std::string_view to_string(CellType t);

/// Parse an ISCAS89-style type token (case-insensitive, "BUFF" accepted).
[[nodiscard]] std::optional<CellType> cell_type_from_token(std::string_view token);

[[nodiscard]] constexpr bool is_combinational(CellType t) {
  return t != CellType::kInput && t != CellType::kOutput && t != CellType::kDff;
}

/// First-order delay characterization of one cell type:
///   delay = nominal * (1 + s_length*dL + s_tox*dTox + s_vth*dVth)
/// where dX are relative parameter deviations.
struct CellTiming {
  double nominal_delay_ps = 0.0;
  double sens_length = 0.0;
  double sens_tox = 0.0;
  double sens_vth = 0.0;
};

/// Characterized library (delays in picoseconds).
class CellLibrary {
 public:
  /// Default library with representative 45nm-class delays.
  [[nodiscard]] static CellLibrary standard();

  [[nodiscard]] const CellTiming& timing(CellType t) const;

  [[nodiscard]] double dff_setup_ps() const { return dff_setup_ps_; }
  [[nodiscard]] double dff_hold_ps() const { return dff_hold_ps_; }
  /// Clock-to-Q delay of the flip-flop output stage.
  [[nodiscard]] double dff_clk_to_q_ps() const { return timing(CellType::kDff).nominal_delay_ps; }

 private:
  CellTiming timings_[11] = {};
  double dff_setup_ps_ = 2.0;
  double dff_hold_ps_ = 1.5;
};

}  // namespace effitest::netlist
