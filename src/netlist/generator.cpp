#include "netlist/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace effitest::netlist {

namespace {

struct Builder {
  explicit Builder(const GeneratorSpec& spec)
      : spec(spec), rng(spec.seed), nl(spec.name),
        library(CellLibrary::standard()) {}

  const GeneratorSpec& spec;
  stats::Rng rng;
  Netlist nl;
  CellLibrary library;
  int gate_counter = 0;
  int pi_counter = 0;

  /// Pending D-pin drivers per flip-flop cell id.
  std::vector<std::pair<int, std::vector<int>>> ff_drivers;
  std::vector<int> driver_slot;  // ff id -> index into ff_drivers

  [[nodiscard]] std::string next_gate_name() {
    return "g" + std::to_string(gate_counter++);
  }
  [[nodiscard]] std::string next_pi_name() {
    return "pi" + std::to_string(pi_counter++);
  }

  [[nodiscard]] Point jitter(Point base, double radius) {
    const double a = rng.uniform(0.0, 2.0 * 3.14159265358979);
    const double r = radius * std::sqrt(rng.uniform());
    return clamp_point({base.x + r * std::cos(a), base.y + r * std::sin(a)});
  }

  [[nodiscard]] static Point clamp_point(Point p) {
    p.x = std::clamp(p.x, 0.001, 0.999);
    p.y = std::clamp(p.y, 0.001, 0.999);
    return p;
  }

  [[nodiscard]] static Point lerp(Point a, Point b, double t) {
    return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
  }

  [[nodiscard]] CellType random_gate_type() {
    const double u = rng.uniform();
    if (u < 0.30) return CellType::kNand;
    if (u < 0.50) return CellType::kNor;
    if (u < 0.70) return CellType::kNot;
    if (u < 0.80) return CellType::kAnd;
    if (u < 0.90) return CellType::kOr;
    return CellType::kBuf;
  }

  int add_ff(Point pos) {
    const int id = nl.add_cell("ff" + std::to_string(ff_drivers.size()),
                               CellType::kDff, {}, pos);
    driver_slot.resize(nl.num_cells(), -1);
    driver_slot[static_cast<std::size_t>(id)] =
        static_cast<int>(ff_drivers.size());
    ff_drivers.emplace_back(id, std::vector<int>{});
    return id;
  }

  void add_ff_driver(int ff, int signal) {
    ff_drivers[static_cast<std::size_t>(driver_slot[static_cast<std::size_t>(ff)])]
        .second.push_back(signal);
  }

  /// Chain of `len` gates from `from`; positions interpolate a->b.
  /// Returns the last gate id (== from when len == 0). Two-input gates take
  /// `side` as their second fanin.
  int make_chain(int from, std::size_t len, Point a, Point b, int side) {
    int prev = from;
    for (std::size_t i = 0; i < len; ++i) {
      const CellType t = random_gate_type();
      std::vector<int> fanins{prev};
      if (!is_unary(t)) fanins.push_back(side);
      const double frac = (static_cast<double>(i) + 1.0) / (static_cast<double>(len) + 1.0);
      const Point pos = jitter(lerp(a, b, frac), 0.012);
      prev = nl.add_cell(next_gate_name(), t, std::move(fanins), pos);
    }
    return prev;
  }

  [[nodiscard]] double delay_of(CellType t) const {
    return library.timing(t).nominal_delay_ps;
  }

  /// Chain built to a *nominal delay* target (ps): gates are appended while
  /// they bring the cumulative delay closer to the target. Near-critical
  /// paths in real designs all sit close to the clock period — this is what
  /// makes delay-range alignment by buffers effective, so the generator
  /// reproduces it. Returns {last gate id, accumulated delay}.
  std::pair<int, double> make_chain_to_delay(int from, double target_ps,
                                             std::size_t min_gates, Point a,
                                             Point b, int side) {
    int prev = from;
    double acc = 0.0;
    std::size_t count = 0;
    // Expected extent of the chain for position interpolation.
    const double avg_gate = 11.5;
    const double expected =
        std::max<double>(static_cast<double>(min_gates),
                         std::max(1.0, target_ps / avg_gate));
    while (count < min_gates || acc < target_ps) {
      const CellType t = random_gate_type();
      const double d = delay_of(t);
      // Stop when adding the gate overshoots more than stopping undershoots.
      if (count >= min_gates && acc + d - target_ps > target_ps - acc) break;
      std::vector<int> fanins{prev};
      if (!is_unary(t)) fanins.push_back(side);
      const double frac = std::min(
          1.0, (static_cast<double>(count) + 1.0) / (expected + 1.0));
      const Point pos = jitter(lerp(a, b, frac), 0.012);
      prev = nl.add_cell(next_gate_name(), t, std::move(fanins), pos);
      acc += d;
      ++count;
      if (count > 4096) break;  // defensive
    }
    return {prev, acc};
  }

  [[nodiscard]] static bool is_unary(CellType t) {
    return t == CellType::kBuf || t == CellType::kNot;
  }

  [[nodiscard]] std::size_t uniform_len(std::size_t lo, std::size_t hi) {
    if (hi <= lo) return lo;
    return static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  }
};

}  // namespace

GeneratedCircuit generate_circuit(const GeneratorSpec& spec) {
  if (spec.num_buffers == 0 || spec.num_buffers > spec.num_flip_flops) {
    throw NetlistError("generator: nb must be in [1, ns]");
  }
  if (spec.num_critical_paths == 0) {
    throw NetlistError("generator: np must be positive");
  }

  Builder b(spec);
  const std::size_t nb = spec.num_buffers;
  const std::size_t np = spec.num_critical_paths;
  // A hub's fan-in cone comes from the neighbouring cluster while its
  // fan-out cone stays local, so process variation creates the cross-stage
  // imbalance that post-silicon tuning exists to fix (Fig. 5 of the paper:
  // chains span clusters 1 and 2). Up to 2 clusters per buffer, capped by
  // the satellite capacity each cluster needs (>= np / (2 nb) sinks/sources
  // per cone) and by the number of distinct correlation-grid cells.
  std::size_t nc = spec.num_clusters;
  if (nc == 0) {
    const auto capacity_cap = static_cast<std::size_t>(
        2.0 * static_cast<double>(nb) *
        static_cast<double>(spec.num_flip_flops - nb) /
        std::max<double>(1.0, static_cast<double>(np)));
    nc = std::min({2 * nb, std::max<std::size_t>(capacity_cap, 1),
                   static_cast<std::size_t>(56)});
    nc = std::max<std::size_t>(nc, 2);
    nc = std::min(nc, std::max<std::size_t>(1, (spec.num_flip_flops - nb) / 2));
    nc = std::max<std::size_t>(nc, 1);
  }

  // --- Cluster centers on a jittered grid. A cluster's footprint is about
  //     the size of the finest correlation-grid cell (1/8 die), so its gates
  //     share most — but not all — spatial factors: intra-cluster delay
  //     correlation lands around 0.8-0.99 (several principal components per
  //     cluster) while inter-cluster correlation falls to the global floor.
  // The spatial correlation length is a process constant while die area
  // grows with gate count, so small circuits occupy a correspondingly small
  // region of the correlation grid: their clusters sit closer together and
  // retain higher inter-cluster correlation (20k gates ~ full reticle).
  const double occupancy = std::clamp(
      std::sqrt(static_cast<double>(spec.num_gates) / 20000.0), 0.35, 1.0);
  const auto grid = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(nc))));
  std::vector<Point> centers;
  for (std::size_t i = 0; i < nc; ++i) {
    const double gx = (static_cast<double>(i % grid) + 0.5) / static_cast<double>(grid);
    const double gy = (static_cast<double>(i / grid) + 0.5) / static_cast<double>(grid);
    const Point scaled{0.5 + (gx - 0.5) * occupancy,
                       0.5 + (gy - 0.5) * occupancy};
    centers.push_back(b.jitter(scaled, 0.02));
  }

  // --- Hub flip-flops (the ones that get tuning buffers). -------------------
  std::vector<int> hubs;
  std::vector<std::size_t> hub_cluster;
  for (std::size_t i = 0; i < nb; ++i) {
    const std::size_t c = i % nc;
    hubs.push_back(b.add_ff(b.jitter(centers[c], 0.01)));
    hub_cluster.push_back(c);
  }

  // --- Edge plan: hub-to-hub chains + per-hub in/out quotas. ----------------
  std::size_t n_hub_hub = std::min<std::size_t>(np / 20, nb > 1 ? nb : 0);
  const std::size_t n_cone_edges = np - n_hub_hub;
  std::vector<std::size_t> quota(nb, n_cone_edges / nb);
  for (std::size_t i = 0; i < n_cone_edges % nb; ++i) ++quota[i];

  // --- Satellite flip-flops, distributed over clusters by edge load. --------
  // Each cluster must host enough distinct satellites for every cone it
  // serves (a hub's out-edges need distinct sinks, in-edges distinct
  // sources); beyond that minimum, extra FF budget is spread by load up to
  // the requested reuse factor.
  const std::size_t ff_budget = spec.num_flip_flops - nb;
  std::vector<std::size_t> need(nc, 0);
  std::vector<std::size_t> cluster_edges(nc, 0);
  for (std::size_t i = 0; i < nb; ++i) {
    const std::size_t q_out = quota[i] / 2;
    const std::size_t q_in = quota[i] - q_out;
    // Out-cone satellites live in the hub's cluster, in-cone sources in the
    // neighbouring one.
    need[hub_cluster[i]] = std::max(need[hub_cluster[i]], q_out);
    need[(hub_cluster[i] + 1) % nc] =
        std::max(need[(hub_cluster[i] + 1) % nc], q_in);
    cluster_edges[hub_cluster[i]] += q_out;
    cluster_edges[(hub_cluster[i] + 1) % nc] += q_in;
  }
  std::size_t need_sum = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    need[c] = std::max<std::size_t>(need[c], 2);
    need_sum += need[c];
  }
  if (need_sum > ff_budget) {
    throw NetlistError("generator: np too large for ns (satellite budget)");
  }
  const std::size_t by_reuse = static_cast<std::size_t>(
      std::ceil(static_cast<double>(np) / spec.satellite_reuse));
  const std::size_t sat_total =
      std::min(ff_budget, std::max(need_sum, by_reuse));
  std::size_t spare = sat_total - need_sum;
  std::size_t edge_sum = 0;
  for (std::size_t e : cluster_edges) edge_sum += e;
  std::vector<std::vector<int>> satellites(nc);
  std::size_t sats_made = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    std::size_t want = need[c];
    if (edge_sum > 0 && spare > 0) {
      const auto extra = static_cast<std::size_t>(
          std::llround(static_cast<double>(spare) *
                       static_cast<double>(cluster_edges[c]) /
                       static_cast<double>(edge_sum)));
      want += std::min(extra, spare);
    }
    for (std::size_t s = 0; s < want && sats_made < sat_total; ++s, ++sats_made) {
      satellites[c].push_back(b.add_ff(b.jitter(centers[c], spec.cluster_radius)));
    }
  }

  // --- Side nets: one PI-driven buffer per cluster (2nd fanins of gates). ---
  std::vector<int> side(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    const int pi = b.nl.add_cell(b.next_pi_name(), CellType::kInput, {},
                                 b.jitter(centers[c], 0.02));
    side[c] = b.nl.add_cell(b.next_gate_name(), CellType::kBuf, {pi},
                            b.jitter(centers[c], 0.02));
  }

  // --- Delay-target calibration. ---------------------------------------------
  // Gate budget: fixed structures (trunks, merges, capture gates, hold
  // shorts, background) are estimated, the rest funds the per-path leaves.
  // Leaf chains are then built to a *delay* target so every monitored path
  // lands near the same nominal delay — near-critical paths in real designs
  // cluster around the clock period, which is precisely what makes buffer
  // alignment (§3.3) effective.
  const double avg_gate = 11.5;  // mean nominal delay of the gate mix, ps
  const std::size_t bg_ffs = ff_budget - sats_made;
  const double overhead = 1.2 * static_cast<double>(np) +
                          12.0 * static_cast<double>(nb) +
                          2.0 * static_cast<double>(bg_ffs) +
                          static_cast<double>(spec.num_flip_flops) + 50.0;
  double avg_leaf = (static_cast<double>(spec.num_gates) - overhead) * 0.95 /
                    static_cast<double>(np);
  // Tight budget (dense designs like pci_bridge32): shorten the auxiliary
  // structures so the critical network still fits the published gate count.
  const bool tight = avg_leaf < 1.5;
  avg_leaf = std::clamp(avg_leaf, 1.0, 8.0);
  const double leaf_budget_ps = avg_leaf * avg_gate;
  const double trunk_lo_ps = static_cast<double>(spec.trunk_min) * avg_gate;
  const double trunk_hi_ps = static_cast<double>(spec.trunk_max) * avg_gate;
  // Target combinational delay of every monitored path (trunk + leaf +
  // merge + capture stage).
  const double comb_target =
      0.5 * (trunk_lo_ps + trunk_hi_ps) + leaf_budget_ps + 2.0 * avg_gate;
  // Per-path jitter keeps paths near-critical rather than identical.
  const double target_jitter = 4.0;

  GeneratedCircuit out;
  out.spec = spec;
  std::set<std::pair<int, int>> edge_set;

  auto record_edge = [&](int src, int dst) {
    out.critical_edges.emplace_back(src, dst);
    edge_set.insert({src, dst});
  };

  // --- Hub-to-hub chains (series paths across/within clusters). -------------
  for (std::size_t i = 0; i < n_hub_hub; ++i) {
    const int src = hubs[i % nb];
    const int dst = hubs[(i + 1) % nb];
    if (src == dst || edge_set.contains({src, dst})) continue;
    const Point pa = b.nl.cell(src).position;
    const Point pb = b.nl.cell(dst).position;
    const double target = comb_target - avg_gate +
                          b.rng.uniform(-target_jitter, target_jitter);
    const int end = b.make_chain_to_delay(src, std::max(target, avg_gate), 2,
                                          pa, pb, side[hub_cluster[i % nb]])
                        .first;
    b.add_ff_driver(dst, end);
    record_edge(src, dst);
  }
  n_hub_hub = out.critical_edges.size();

  // --- Hub cones: shared out-trunk with per-edge leaves; per-edge in-leaves
  //     merging into a shared in-trunk. ---------------------------------------
  for (std::size_t h = 0; h < nb; ++h) {
    const std::size_t c = hub_cluster[h];
    const int hub = hubs[h];
    const Point hub_pos = b.nl.cell(hub).position;
    // Fan-out stays in the hub's cluster; fan-in launches from the
    // neighbouring cluster (cross-cluster pipeline stages, Fig. 5).
    const auto& pool_out = satellites[c];
    const auto& pool_in = satellites[(c + 1) % nc];
    if (pool_out.empty() || pool_in.empty()) {
      throw NetlistError("generator: cluster without satellites");
    }

    std::size_t q_out = quota[h] / 2;
    std::size_t q_in = quota[h] - q_out;
    // Each out (in) edge needs a distinct sink (source) satellite.
    q_out = std::min(q_out, pool_out.size());
    q_in = std::min(q_in, pool_in.size());
    // Re-balance what was clipped.
    std::size_t lost = quota[h] - q_out - q_in;
    while (lost > 0 && q_out < pool_out.size()) { ++q_out; --lost; }
    while (lost > 0 && q_in < pool_in.size()) { ++q_in; --lost; }
    if (lost > 0) {
      throw NetlistError("generator: np too large for ns (cluster overflow)");
    }

    // Shuffled satellite orders for this hub.
    const auto shuffled = [&](std::vector<int> v) {
      for (std::size_t i = v.size(); i > 1; --i) {
        std::swap(v[i - 1],
                  v[static_cast<std::size_t>(
                      b.rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
      }
      return v;
    };
    const std::vector<int> order_out = shuffled(pool_out);
    const std::vector<int> order_in = shuffled(pool_in);

    // Out cone: hub -> trunk -> leaves -> satellites. Leaf delay compensates
    // the cone's trunk so all paths land near comb_target.
    if (q_out > 0) {
      const double trunk_target = b.rng.uniform(trunk_lo_ps, trunk_hi_ps);
      const auto [trunk_end, trunk_delay] = b.make_chain_to_delay(
          hub, trunk_target, 1, hub_pos, hub_pos, side[c]);
      std::size_t made = 0;
      for (std::size_t i = 0; i < order_out.size() && made < q_out; ++i) {
        const int dst = order_out[i];
        if (dst == hub || edge_set.contains({hub, dst})) continue;
        const double leaf_target =
            comb_target - trunk_delay - avg_gate +
            b.rng.uniform(-target_jitter, target_jitter);
        const int leaf =
            b.make_chain_to_delay(trunk_end, std::max(leaf_target, 6.0), 1,
                                  hub_pos, b.nl.cell(dst).position, side[c])
                .first;
        b.add_ff_driver(dst, leaf);
        record_edge(hub, dst);
        ++made;
      }
    }

    // In cone: satellites -> leaves -> merge -> trunk -> hub.
    if (q_in > 0) {
      const double trunk_target = b.rng.uniform(trunk_lo_ps, trunk_hi_ps);
      std::vector<int> leaf_ends;
      std::size_t made = 0;
      for (std::size_t i = 0; i < order_in.size() && made < q_in; ++i) {
        const int src = order_in[i];
        if (src == hub || edge_set.contains({src, hub})) continue;
        const double leaf_target =
            comb_target - trunk_target - 2.0 * avg_gate +
            b.rng.uniform(-target_jitter, target_jitter);
        // Leaf gates stay inside the source cluster (gates cluster at the
        // launching register; only routing crosses the die), preserving the
        // high intra-cone delay correlation the prediction step relies on.
        const int leaf =
            b.make_chain_to_delay(src, std::max(leaf_target, 6.0), 1,
                                  b.nl.cell(src).position,
                                  b.nl.cell(src).position, side[c])
                .first;
        leaf_ends.push_back(leaf);
        record_edge(src, hub);
        ++made;
      }
      if (!leaf_ends.empty()) {
        // Merge and trunk live in the *source* cluster: the fan-in cone is
        // physically one cluster, the fan-out cone another, and the hub sits
        // between them — the cross-stage imbalance a tuning buffer fixes.
        const Point in_center = centers[(c + 1) % nc];
        int trunk_start = leaf_ends[0];
        if (leaf_ends.size() > 1) {
          trunk_start = b.nl.add_cell(b.next_gate_name(), CellType::kNand,
                                      leaf_ends, b.jitter(in_center, 0.02));
        }
        const int trunk_end =
            b.make_chain_to_delay(trunk_start, trunk_target, 1, in_center,
                                  in_center, side[c])
                .first;
        b.add_ff_driver(hub, trunk_end);
      }
    }
  }

  if (out.critical_edges.size() != np) {
    // Top up with extra hub-satellite edges across clusters if rounding or
    // dedup dropped a few.
    for (std::size_t h = 0; h < nb && out.critical_edges.size() < np; ++h) {
      const std::size_t c = hub_cluster[h];
      for (int dst : satellites[(c + 1) % nc]) {
        if (out.critical_edges.size() >= np) break;
        if (edge_set.contains({hubs[h], dst})) continue;
        const double target = comb_target - avg_gate +
                              b.rng.uniform(-target_jitter, target_jitter);
        const int leaf =
            b.make_chain_to_delay(hubs[h], std::max(target, avg_gate), 2,
                                  b.nl.cell(hubs[h]).position,
                                  b.nl.cell(dst).position, side[c])
                .first;
        b.add_ff_driver(dst, leaf);
        record_edge(hubs[h], dst);
      }
    }
  }
  if (out.critical_edges.size() != np) {
    throw NetlistError("generator: could not realize requested np");
  }

  // --- Logic-masking mutual exclusions (§3.2): a small fraction of
  //     same-cluster edge pairs cannot be sensitized by one vector set
  //     (they share cluster side nets); the batch builder must separate
  //     them. Pairs that already conflict structurally are skipped. --------
  {
    const auto n_excl = static_cast<std::size_t>(
        spec.exclusive_fraction * static_cast<double>(np));
    std::size_t attempts = 0;
    while (out.exclusive_edge_pairs.size() < n_excl && attempts < 20 * n_excl + 20) {
      ++attempts;
      const auto i = static_cast<std::size_t>(
          b.rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
      const auto j = static_cast<std::size_t>(
          b.rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
      if (i == j) continue;
      const auto& [si, di] = out.critical_edges[i];
      const auto& [sj, dj] = out.critical_edges[j];
      if (si == sj || di == dj) continue;  // already batch-incompatible
      out.exclusive_edge_pairs.emplace_back(std::min(i, j), std::max(i, j));
    }
  }

  // --- Hold-risk short parallel paths on a fraction of critical edges. ------
  for (const auto& [src, dst] : out.critical_edges) {
    if (b.rng.uniform() < spec.hold_edge_fraction) {
      const int end = b.make_chain(src, tight ? 1 : b.uniform_len(1, 2),
                                   b.nl.cell(src).position,
                                   b.nl.cell(dst).position,
                                   side[hub_cluster[0]]);
      b.add_ff_driver(dst, end);
      out.hold_edges.emplace_back(src, dst);
    }
  }

  // --- Background flip-flops in a ring of short chains. ---------------------
  std::vector<int> bg;
  for (std::size_t i = 0; i < bg_ffs; ++i) {
    bg.push_back(b.add_ff(b.jitter({b.rng.uniform(), b.rng.uniform()}, 0.0)));
  }
  for (std::size_t i = 0; i < bg.size(); ++i) {
    const int src = bg[i];
    const int dst = bg[(i + 1) % bg.size()];
    if (src == dst) break;
    const int end = b.make_chain(src, tight ? 1 : 2, b.nl.cell(src).position,
                                 b.nl.cell(dst).position, side[i % nc]);
    b.add_ff_driver(dst, end);
  }

  // --- Resolve flip-flop D pins. Every FF gets a uniform capture stage
  //     (BUF for one driver, AND merge for several) so converging paths and
  //     plain chains see the same terminal delay. ------------------------------
  for (auto& [ff, drivers] : b.ff_drivers) {
    if (drivers.empty()) {
      b.nl.set_fanins(ff, {side[0]});
      continue;
    }
    const CellType capture_type =
        drivers.size() == 1 ? CellType::kBuf : CellType::kAnd;
    const int capture = b.nl.add_cell(b.next_gate_name(), capture_type,
                                      drivers, b.nl.cell(ff).position);
    b.nl.set_fanins(ff, {capture});
  }

  // --- Pure combinational filler up to the ng target. ------------------------
  if (b.nl.num_combinational_gates() < spec.num_gates) {
    const int filler_pi =
        b.nl.add_cell(b.next_pi_name(), CellType::kInput, {}, Point{0.5, 0.5});
    while (b.nl.num_combinational_gates() < spec.num_gates) {
      const std::size_t remaining =
          spec.num_gates - b.nl.num_combinational_gates();
      const Point at{b.rng.uniform(), b.rng.uniform()};
      const int end = b.make_chain(filler_pi, std::min<std::size_t>(remaining, 20),
                                   at, b.jitter(at, 0.05), side[0]);
      b.nl.mark_primary_output(end);
    }
  }

  out.buffered_ffs = hubs;
  b.nl.validate();
  out.netlist = std::move(b.nl);
  return out;
}

std::vector<GeneratorSpec> paper_benchmark_specs() {
  // Columns ns / ng / nb / np of Table 1 in the paper.
  struct Row {
    const char* name;
    std::size_t ns, ng, nb, np;
  };
  static constexpr Row kRows[] = {
      {"s9234", 211, 5597, 2, 80},
      {"s13207", 638, 7951, 5, 485},
      {"s15850", 534, 9772, 5, 397},
      {"s38584", 1426, 19253, 7, 370},
      {"mem_ctrl", 1065, 10327, 10, 3016},
      {"usb_funct", 1746, 14381, 17, 482},
      {"ac97_ctrl", 2199, 9208, 21, 780},
      {"pci_bridge32", 3321, 12494, 32, 3472},
  };
  std::vector<GeneratorSpec> specs;
  std::uint64_t seed = 20160605;  // DAC 2016 started June 5th
  for (const Row& r : kRows) {
    GeneratorSpec s;
    s.name = r.name;
    s.num_flip_flops = r.ns;
    s.num_gates = r.ng;
    s.num_buffers = r.nb;
    s.num_critical_paths = r.np;
    s.seed = seed++;
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<GeneratorSpec> extended_benchmark_specs() {
  // The largest ISCAS89 circuits, absent from the paper's Table 1 but
  // standard in the SSTA literature; ns/ng are the published register and
  // gate counts, nb/np follow the paper's buffers-per-register and
  // monitored-path densities. Seeds continue the Table-1 sequence
  // (20160605 + row), so the family is stable as rows are appended.
  struct Row {
    const char* name;
    std::size_t ns, ng, nb, np;
  };
  static constexpr Row kRows[] = {
      {"s35932", 1728, 16065, 9, 432},
      {"s38417", 1636, 22179, 14, 587},
  };
  std::vector<GeneratorSpec> specs;
  std::uint64_t seed = 20160605 + 8;  // after the 8 Table-1 rows
  for (const Row& r : kRows) {
    GeneratorSpec s;
    s.name = r.name;
    s.num_flip_flops = r.ns;
    s.num_gates = r.ng;
    s.num_buffers = r.nb;
    s.num_critical_paths = r.np;
    s.seed = seed++;
    specs.push_back(std::move(s));
  }
  return specs;
}

GeneratorSpec paper_benchmark_spec(const std::string& name) {
  for (GeneratorSpec& s : paper_benchmark_specs()) {
    if (s.name == name) return s;
  }
  for (GeneratorSpec& s : extended_benchmark_specs()) {
    if (s.name == name) return s;
  }
  throw NetlistError("unknown paper benchmark: " + name);
}

}  // namespace effitest::netlist
