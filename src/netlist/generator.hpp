#pragma once
// Synthetic clustered benchmark generator.
//
// The paper's experiments run on ISCAS89 / TAU13 circuits mapped to an
// industrial library, with tuning buffers inserted by a method like [3].
// Those artifacts are not available, so this generator produces circuits that
// reproduce the *published statistics* of each benchmark row in Table 1:
//
//   ns  flip-flops,  ng  logic gates,  nb  tuning buffers,
//   np  monitored FF-pair paths (paths incident to buffered flip-flops),
//
// with the Fig.-5 physical structure the method exploits: critical paths
// cluster around buffered "hub" flip-flops, hub fan-in/fan-out cones share
// gate trunks, and clusters are tightly placed so intra-cluster path delays
// are strongly correlated while inter-cluster correlation falls to the global
// floor.
//
// The output is an ordinary Netlist (so the whole downstream pipeline is
// identical for parsed .bench circuits) plus metadata: which FFs carry
// buffers and which FF pairs are monitored / hold-checked.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "stats/rng.hpp"

namespace effitest::netlist {

struct GeneratorSpec {
  std::string name = "synthetic";
  std::size_t num_flip_flops = 200;   ///< ns
  std::size_t num_gates = 5000;       ///< ng (approximate target, padded)
  std::size_t num_buffers = 2;        ///< nb
  std::size_t num_critical_paths = 80;  ///< np (exact)
  std::size_t num_clusters = 0;       ///< 0 = derive from nb (ceil(nb/2))
  std::uint64_t seed = 1;

  // Chain-shape knobs.
  std::size_t trunk_min = 3, trunk_max = 7;   ///< shared trunk gates per hub cone
  std::size_t leaf_min = 2, leaf_max = 5;     ///< per-path private gates
  std::size_t hub_chain_min = 8, hub_chain_max = 14;  ///< hub-to-hub chains
  double hold_edge_fraction = 0.25;  ///< fraction of critical edges that also
                                     ///< get a parallel 1-2 gate short path
  double satellite_reuse = 2.0;      ///< average monitored edges per satellite FF
  double cluster_radius = 0.060;     ///< placement radius of a cluster (unit die)
  /// Expected fraction of monitored edges that get one mutual-exclusion
  /// partner (logic masking, §3.2: "some paths in a test batch cannot be
  /// activated by ATPG vectors at the same time").
  double exclusive_fraction = 0.02;
};

struct GeneratedCircuit {
  Netlist netlist;
  GeneratorSpec spec;
  /// Flip-flop cell ids that carry a post-silicon tuning buffer.
  std::vector<int> buffered_ffs;
  /// Monitored FF-pair edges (src FF id, dst FF id): the paths whose max
  /// delays are required for buffer configuration (column np in Table 1).
  std::vector<std::pair<int, int>> critical_edges;
  /// FF-pair edges that have a short parallel path and therefore a
  /// hold-time exposure (§3.5).
  std::vector<std::pair<int, int>> hold_edges;
  /// Pairs of indices into critical_edges that logic masking prevents from
  /// being sensitized in the same test batch (§3.2).
  std::vector<std::pair<std::size_t, std::size_t>> exclusive_edge_pairs;
};

/// Build a synthetic circuit per `spec`. Deterministic in spec.seed.
/// Throws NetlistError when the spec is inconsistent (e.g. nb > ns).
[[nodiscard]] GeneratedCircuit generate_circuit(const GeneratorSpec& spec);

/// Specs matching the 8 benchmark rows of Table 1 of the paper
/// (s9234, s13207, s15850, s38584, mem_ctrl, usb_funct, ac97_ctrl,
/// pci_bridge32), including their published ns/ng/nb/np statistics.
[[nodiscard]] std::vector<GeneratorSpec> paper_benchmark_specs();

/// The largest ISCAS89 circuits beyond the paper's Table 1 (s35932,
/// s38417), with published ns/ng and Table-1-density nb/np — the
/// full-ISCAS89 scale the analytic engine benchmarks open up.
[[nodiscard]] std::vector<GeneratorSpec> extended_benchmark_specs();

/// Convenience: the spec for one named paper or extended benchmark.
/// Throws if unknown.
[[nodiscard]] GeneratorSpec paper_benchmark_spec(const std::string& name);

}  // namespace effitest::netlist
