#pragma once
// ISCAS89 .bench netlist writer — the inverse of bench_parser.hpp.
//
// Lets users export generated benchmark circuits for inspection or for use
// with external EDA tools, and gives the test suite a parse/write round-trip
// oracle. Placement is not part of the .bench format; an optional sidecar
// format ("#!place name x y" comment lines, understood by this module's
// reader extension) preserves it losslessly.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace effitest::netlist {

struct BenchWriteOptions {
  /// Emit "#!place <name> <x> <y>" comments so a round-trip keeps placement.
  bool include_placement = true;
  /// Emit a header comment with circuit statistics.
  bool include_header = true;
};

/// Serialize a netlist to ISCAS89 .bench text.
void write_bench(const Netlist& netlist, std::ostream& out,
                 const BenchWriteOptions& options = {});

[[nodiscard]] std::string write_bench_string(
    const Netlist& netlist, const BenchWriteOptions& options = {});

void write_bench_file(const Netlist& netlist, const std::string& path,
                      const BenchWriteOptions& options = {});

/// Parse .bench text honouring the "#!place" placement sidecar comments
/// emitted by write_bench (plain parse_bench ignores them as comments).
[[nodiscard]] Netlist parse_bench_with_placement(const std::string& text,
                                                 std::string name = "bench");

/// File variant: parses with placement when the file carries "#!place"
/// lines, otherwise falls back to the synthetic topological layout.
[[nodiscard]] Netlist parse_bench_file_with_placement(const std::string& path);

}  // namespace effitest::netlist
