#pragma once
// ISCAS89 .bench netlist parser.
//
// The paper evaluates on ISCAS89 circuits (s9234, s13207, ...). The original
// distribution files are not redistributable here, so the repository ships
// hand-written circuits in the same format (see data/) plus the synthetic
// generator; this parser makes the pipeline ingest any real .bench file a
// user drops in.
//
// Grammar (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = TYPE(arg1, arg2, ...)
// with TYPE in {DFF, BUF(F), NOT/INV, AND, NAND, OR, NOR, XOR, XNOR}.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace effitest::netlist {

class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(std::size_t line, const std::string& what)
      : std::runtime_error(".bench line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  std::size_t line_number;
};

/// Parse .bench text from a stream. `name` becomes the netlist name.
/// Cells are given a synthetic placement (topological-depth layout) since
/// .bench carries no physical information. Throws BenchParseError on
/// malformed input and NetlistError on structural problems.
[[nodiscard]] Netlist parse_bench(std::istream& in, std::string name = "bench");

/// Parse .bench from a string.
[[nodiscard]] Netlist parse_bench_string(const std::string& text,
                                         std::string name = "bench");

/// Parse .bench from a file path.
[[nodiscard]] Netlist parse_bench_file(const std::string& path);

}  // namespace effitest::netlist
