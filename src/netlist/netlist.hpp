#pragma once
// Gate-level netlist with placement.
//
// A Netlist is the common representation produced by both front ends
// (the ISCAS89 .bench parser and the synthetic benchmark generator) and
// consumed by the timing substrate. Cells carry die coordinates because
// EffiTest's statistics are driven by *spatial* delay correlation.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"

namespace effitest::netlist {

/// Die coordinates normalized to the unit square.
struct Point {
  double x = 0.5;
  double y = 0.5;
};

struct Cell {
  std::string name;
  CellType type = CellType::kBuf;
  std::vector<int> fanins;  ///< driver cell ids; for a DFF, fanins[0] = D pin
  Point position;
  bool is_primary_output = false;
};

class NetlistError : public std::runtime_error {
 public:
  explicit NetlistError(const std::string& what) : std::runtime_error(what) {}
};

/// Mutable gate-level netlist. Cell ids are dense indices, stable after
/// creation. Combinational cycles are rejected by validate().
class Netlist {
 public:
  explicit Netlist(std::string name = "") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Add a cell; name must be unique and non-empty. Returns its id.
  int add_cell(std::string name, CellType type, std::vector<int> fanins = {});

  /// Add with position.
  int add_cell(std::string name, CellType type, std::vector<int> fanins,
               Point position);

  void set_position(int id, Point p);
  void set_fanins(int id, std::vector<int> fanins);
  void add_fanin(int id, int driver);
  void mark_primary_output(int id);

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] const Cell& cell(int id) const;
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }

  /// Id by name or -1.
  [[nodiscard]] int find(const std::string& name) const;

  [[nodiscard]] std::vector<int> primary_inputs() const;
  [[nodiscard]] std::vector<int> flip_flops() const;
  [[nodiscard]] std::size_t num_flip_flops() const;
  /// Combinational gates only (excludes inputs/outputs/DFFs).
  [[nodiscard]] std::size_t num_combinational_gates() const;

  /// Fanout adjacency (computed; cell id -> list of sink ids).
  [[nodiscard]] std::vector<std::vector<int>> fanouts() const;

  /// Topological order of all cells, treating DFF outputs as sources (a DFF's
  /// D-pin dependency does not create a combinational edge). Throws
  /// NetlistError on a combinational cycle.
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Structural sanity check: fanin counts consistent with cell types,
  /// no combinational cycles, all fanin ids valid. Throws on violation.
  void validate() const;

 private:
  void check_id(int id) const;

  std::string name_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace effitest::netlist
