#include "netlist/netlist.hpp"

#include <algorithm>

namespace effitest::netlist {

int Netlist::add_cell(std::string name, CellType type, std::vector<int> fanins) {
  return add_cell(std::move(name), type, std::move(fanins), Point{});
}

int Netlist::add_cell(std::string name, CellType type, std::vector<int> fanins,
                      Point position) {
  if (name.empty()) throw NetlistError("cell name must not be empty");
  if (by_name_.contains(name)) {
    throw NetlistError("duplicate cell name: " + name);
  }
  for (int f : fanins) check_id(f);
  const int id = static_cast<int>(cells_.size());
  by_name_.emplace(name, id);
  cells_.push_back(Cell{std::move(name), type, std::move(fanins), position, false});
  return id;
}

void Netlist::set_position(int id, Point p) {
  check_id(id);
  cells_[static_cast<std::size_t>(id)].position = p;
}

void Netlist::set_fanins(int id, std::vector<int> fanins) {
  check_id(id);
  for (int f : fanins) check_id(f);
  cells_[static_cast<std::size_t>(id)].fanins = std::move(fanins);
}

void Netlist::add_fanin(int id, int driver) {
  check_id(id);
  check_id(driver);
  cells_[static_cast<std::size_t>(id)].fanins.push_back(driver);
}

void Netlist::mark_primary_output(int id) {
  check_id(id);
  cells_[static_cast<std::size_t>(id)].is_primary_output = true;
}

const Cell& Netlist::cell(int id) const {
  check_id(id);
  return cells_[static_cast<std::size_t>(id)];
}

int Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

std::vector<int> Netlist::primary_inputs() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].type == CellType::kInput) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Netlist::flip_flops() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].type == CellType::kDff) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::size_t Netlist::num_flip_flops() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](const Cell& c) { return c.type == CellType::kDff; }));
}

std::size_t Netlist::num_combinational_gates() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(), [](const Cell& c) {
        return is_combinational(c.type);
      }));
}

std::vector<std::vector<int>> Netlist::fanouts() const {
  std::vector<std::vector<int>> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    for (int f : cells_[i].fanins) {
      out[static_cast<std::size_t>(f)].push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> Netlist::topological_order() const {
  // Kahn's algorithm over combinational dependencies: a DFF consumes its D
  // input but its own output is a source (no combinational in-edge).
  const std::size_t n = cells_.size();
  std::vector<int> in_degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (cells_[i].type == CellType::kDff) continue;  // source node
    in_degree[i] = static_cast<int>(cells_[i].fanins.size());
  }
  const auto fan = fanouts();
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) frontier.push_back(static_cast<int>(i));
  }
  while (!frontier.empty()) {
    const int id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (int sink : fan[static_cast<std::size_t>(id)]) {
      if (cells_[static_cast<std::size_t>(sink)].type == CellType::kDff) {
        continue;  // edge into a DFF D-pin ends the combinational stage
      }
      if (--in_degree[static_cast<std::size_t>(sink)] == 0) {
        frontier.push_back(sink);
      }
    }
  }
  // DFFs were never given in-degree 0 treatment via fanin edges; they were
  // pushed as sources above. Every cell must have been emitted.
  if (order.size() != n) {
    throw NetlistError("netlist contains a combinational cycle");
  }
  return order;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    const std::size_t nin = c.fanins.size();
    switch (c.type) {
      case CellType::kInput:
        if (nin != 0) throw NetlistError("INPUT with fanins: " + c.name);
        break;
      case CellType::kDff:
        if (nin != 1) throw NetlistError("DFF must have one fanin: " + c.name);
        break;
      case CellType::kBuf:
      case CellType::kNot:
        if (nin != 1) {
          throw NetlistError("unary cell needs one fanin: " + c.name);
        }
        break;
      case CellType::kOutput:
        if (nin != 1) throw NetlistError("OUTPUT needs one fanin: " + c.name);
        break;
      default:
        if (nin < 2) {
          throw NetlistError("multi-input cell needs >= 2 fanins: " + c.name);
        }
    }
    for (int f : c.fanins) check_id(f);
  }
  (void)topological_order();  // throws on cycles
}

void Netlist::check_id(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= cells_.size()) {
    throw NetlistError("cell id out of range");
  }
}

}  // namespace effitest::netlist
