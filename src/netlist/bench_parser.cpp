#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace effitest::netlist {

namespace {

/// Strippable characters: whitespace — explicitly including the '\r' of
/// DOS-formatted (CRLF) files, which real ISCAS89 distributions use — plus
/// the DOS end-of-file marker 0x1A some of them end with. Locale-proof:
/// never defers to std::isspace's runtime locale for the CRLF case.
bool is_strippable(char c) {
  return c == '\r' || c == '\x1a' ||
         std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string strip(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_strippable(s[b])) ++b;
  while (e > b && is_strippable(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

struct PendingGate {
  std::string name;
  CellType type;
  std::vector<std::string> args;
  std::size_t line;
};

/// Assign positions by topological depth: x = depth, y = index within level,
/// both normalized to [0.05, 0.95]. Purely synthetic, but gives spatially
/// coherent clusters for logic that is structurally close.
void assign_layout(Netlist& nl) {
  const auto order = nl.topological_order();
  std::vector<int> depth(nl.num_cells(), 0);
  int max_depth = 0;
  for (int id : order) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::kDff || c.type == CellType::kInput) continue;
    int d = 0;
    for (int f : c.fanins) d = std::max(d, depth[static_cast<std::size_t>(f)] + 1);
    depth[static_cast<std::size_t>(id)] = d;
    max_depth = std::max(max_depth, d);
  }
  std::map<int, int> level_count;
  std::vector<int> level_index(nl.num_cells(), 0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    level_index[i] = level_count[depth[i]]++;
  }
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const int d = depth[i];
    const int total = level_count[d];
    const double x =
        max_depth == 0 ? 0.5 : 0.05 + 0.9 * static_cast<double>(d) / max_depth;
    const double y =
        total <= 1 ? 0.5
                   : 0.05 + 0.9 * static_cast<double>(level_index[i]) / (total - 1);
    nl.set_position(static_cast<int>(i), Point{x, y});
  }
}

}  // namespace

Netlist parse_bench(std::istream& in, std::string name) {
  Netlist nl(std::move(name));
  std::vector<std::string> outputs;
  std::vector<PendingGate> pending;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && line.rfind("\xef\xbb\xbf", 0) == 0) {
      line.erase(0, 3);  // UTF-8 BOM would otherwise glue onto a token
    }
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string text = strip(line);
    if (text.empty()) continue;

    // First ')' on purpose: a legal line has exactly one, and anything
    // after it (e.g. two directives merged onto one line) must trip the
    // trailing-text check below instead of being swallowed into a name.
    const std::size_t open = text.find('(');
    const std::size_t close = text.find(')');
    const std::size_t eq = text.find('=');

    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      if (open == std::string::npos || close == std::string::npos || close < open) {
        throw BenchParseError(line_no, "expected TYPE(name)");
      }
      if (!strip(text.substr(close + 1)).empty()) {
        // Silently dropping trailing junk would mask a mangled file.
        throw BenchParseError(line_no, "unexpected text after ')'");
      }
      const std::string kw = strip(text.substr(0, open));
      const std::string arg = strip(text.substr(open + 1, close - open - 1));
      if (arg.empty()) throw BenchParseError(line_no, "empty name");
      const auto type = cell_type_from_token(kw);
      if (type == CellType::kInput) {
        if (nl.find(arg) >= 0) {
          throw BenchParseError(line_no, "duplicate definition of " + arg);
        }
        nl.add_cell(arg, CellType::kInput);
      } else if (type == CellType::kOutput) {
        outputs.push_back(arg);
      } else {
        throw BenchParseError(line_no, "unknown directive: " + kw);
      }
      continue;
    }

    // name = TYPE(a, b, ...). close < open (e.g. "a = )AND(b") would make
    // the substr lengths below wrap around — reject it like any other
    // malformed shape.
    if (open == std::string::npos || close == std::string::npos ||
        open < eq || close < open) {
      throw BenchParseError(line_no, "expected name = TYPE(args)");
    }
    if (!strip(text.substr(close + 1)).empty()) {
      throw BenchParseError(line_no, "unexpected text after ')'");
    }
    const std::string lhs = strip(text.substr(0, eq));
    if (lhs.empty()) {
      throw BenchParseError(line_no, "missing signal name before '='");
    }
    const std::string type_tok = strip(text.substr(eq + 1, open - eq - 1));
    const auto type = cell_type_from_token(type_tok);
    if (!type || !(*type == CellType::kDff || is_combinational(*type))) {
      throw BenchParseError(line_no, "unknown cell type: " + type_tok);
    }
    PendingGate g;
    g.name = lhs;
    g.type = *type;
    g.line = line_no;
    std::stringstream args(text.substr(open + 1, close - open - 1));
    std::string piece;
    while (std::getline(args, piece, ',')) {
      const std::string a = strip(piece);
      if (a.empty()) throw BenchParseError(line_no, "empty argument");
      g.args.push_back(a);
    }
    if (g.args.empty()) throw BenchParseError(line_no, "cell without inputs");
    pending.push_back(std::move(g));
  }

  // Create all gate cells first (two-pass: .bench allows forward references).
  for (const PendingGate& g : pending) {
    if (nl.find(g.name) >= 0) {
      throw BenchParseError(g.line, "duplicate definition of " + g.name);
    }
    nl.add_cell(g.name, g.type);
  }
  for (const PendingGate& g : pending) {
    std::vector<int> fanins;
    fanins.reserve(g.args.size());
    for (const std::string& a : g.args) {
      const int id = nl.find(a);
      if (id < 0) {
        throw BenchParseError(g.line, "undefined signal: " + a);
      }
      fanins.push_back(id);
    }
    nl.set_fanins(nl.find(g.name), std::move(fanins));
  }
  for (const std::string& o : outputs) {
    const int id = nl.find(o);
    if (id < 0) throw BenchParseError(0, "undefined OUTPUT signal: " + o);
    nl.mark_primary_output(id);
  }

  nl.validate();
  assign_layout(nl);
  return nl;
}

Netlist parse_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(name));
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NetlistError("cannot open .bench file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return parse_bench(in, std::move(name));
}

}  // namespace effitest::netlist
