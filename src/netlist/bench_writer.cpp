#include "netlist/bench_writer.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "netlist/bench_parser.hpp"

namespace effitest::netlist {

void write_bench(const Netlist& netlist, std::ostream& out,
                 const BenchWriteOptions& options) {
  if (options.include_header) {
    out << "# " << (netlist.name().empty() ? "netlist" : netlist.name())
        << "\n# " << netlist.primary_inputs().size() << " inputs, "
        << netlist.num_flip_flops() << " flip-flops, "
        << netlist.num_combinational_gates() << " gates\n";
  }

  for (int pi : netlist.primary_inputs()) {
    out << "INPUT(" << netlist.cell(pi).name << ")\n";
  }
  for (const Cell& c : netlist.cells()) {
    if (c.is_primary_output) out << "OUTPUT(" << c.name << ")\n";
  }
  out << '\n';

  for (const Cell& c : netlist.cells()) {
    if (c.type == CellType::kInput) continue;
    out << c.name << " = " << to_string(c.type) << '(';
    for (std::size_t i = 0; i < c.fanins.size(); ++i) {
      if (i > 0) out << ", ";
      out << netlist.cell(c.fanins[i]).name;
    }
    out << ")\n";
  }

  if (options.include_placement) {
    out << '\n';
    out << std::setprecision(10);
    for (const Cell& c : netlist.cells()) {
      out << "#!place " << c.name << ' ' << c.position.x << ' '
          << c.position.y << '\n';
    }
  }
}

std::string write_bench_string(const Netlist& netlist,
                               const BenchWriteOptions& options) {
  std::ostringstream os;
  write_bench(netlist, os, options);
  return os.str();
}

void write_bench_file(const Netlist& netlist, const std::string& path,
                      const BenchWriteOptions& options) {
  std::ofstream out(path);
  if (!out) throw NetlistError("cannot open .bench file for writing: " + path);
  write_bench(netlist, out, options);
}

Netlist parse_bench_file_with_placement(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NetlistError("cannot open .bench file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  const std::string text = buffer.str();
  if (text.find("#!place ") != std::string::npos) {
    return parse_bench_with_placement(text, std::move(name));
  }
  return parse_bench_string(text, std::move(name));
}

Netlist parse_bench_with_placement(const std::string& text, std::string name) {
  Netlist nl = parse_bench_string(text, std::move(name));
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("#!place ", 0) != 0) continue;
    std::istringstream fields(line.substr(8));
    std::string cell;
    double x = 0.0;
    double y = 0.0;
    if (!(fields >> cell >> x >> y)) {
      throw NetlistError("malformed #!place line: " + line);
    }
    const int id = nl.find(cell);
    if (id < 0) throw NetlistError("#!place references unknown cell: " + cell);
    nl.set_position(id, Point{x, y});
  }
  return nl;
}

}  // namespace effitest::netlist
