#include "net/client.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/test_engine.hpp"
#include "core/tuner_service.hpp"
#include "net/socket.hpp"
#include "parallel/deterministic_for.hpp"
#include "stats/rng.hpp"
#include "timing/model.hpp"

namespace effitest::net {

namespace {

std::string encode_bits(const std::vector<bool>& pass) {
  std::string bits(pass.size(), '0');
  for (std::size_t i = 0; i < pass.size(); ++i) {
    if (pass[i]) bits[i] = '1';
  }
  return bits;
}

[[noreturn]] void protocol_error(const std::string& line,
                                 const std::string& why) {
  throw std::runtime_error("connect: " + why + " (line: \"" + line + "\")");
}

}  // namespace

ClientResult run_loopback_client(const std::string& host, std::uint16_t port,
                                 const core::Problem& problem,
                                 const ClientOptions& options) {
  ConnectBackoff backoff;
  backoff.retries = options.connect_retries;
  SocketStream stream(connect_with_backoff(host, port, backoff));
  stream << "hello effitest-tune-v1 chips=" << options.chips;
  if (options.window != 0) stream << " window=" << options.window;
  if (options.lenient) stream << " lenient";
  stream << '\n';
  stream.flush();

  ClientResult result;
  std::string line;
  const auto read_line = [&]() -> bool {
    if (!std::getline(stream, line)) return false;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  };

  // Greeting: serve effitest-tune-v1 session=<id> seed=<base>. An
  // `error -` line here is the server rejecting the hello.
  if (!read_line()) {
    throw std::runtime_error("connect: server closed before greeting");
  }
  {
    std::istringstream is(line);
    std::string tag, version, session_kv, seed_kv;
    if (!(is >> tag)) protocol_error(line, "empty greeting");
    if (tag == "error") {
      throw std::runtime_error("connect: server rejected session: " + line);
    }
    if (!(is >> version >> session_kv >> seed_kv) || tag != "serve" ||
        version != "effitest-tune-v1" ||
        session_kv.rfind("session=", 0) != 0 ||
        seed_kv.rfind("seed=", 0) != 0) {
      protocol_error(line, "malformed greeting");
    }
    result.session_id = std::stoull(session_kv.substr(8));
    result.seed_base = std::stoull(seed_kv.substr(5));
  }

  // Dies sampled exactly like run_flow's Monte-Carlo loop under the
  // server-supplied base, so the reports match `tune --simulate`.
  const timing::CircuitModel& model = problem.model();
  std::vector<timing::Chip> dies;
  dies.reserve(options.chips);
  timing::SampleWorkspace ws;
  for (std::size_t c = 0; c < options.chips; ++c) {
    stats::Rng rng(parallel::index_seed(result.seed_base, c));
    dies.push_back(model.sample_chip(rng, ws));
  }
  std::vector<core::SimulatedChip> testers;
  testers.reserve(options.chips);
  for (std::size_t c = 0; c < options.chips; ++c) {
    testers.emplace_back(problem, dies[c]);
  }

  // The standard exchange: answer stimulus/final lines until bye. The
  // response is written with plain '\n'; SocketStream flushes pending
  // output before the next blocking read.
  bool saw_header = false;
  while (read_line()) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "bye") {
      return result;
    }
    if (tag == "effitest-tune-v1") {
      saw_header = true;
      continue;
    }
    if (tag == "report") {
      result.report_lines.push_back(line);
      continue;
    }
    if (tag == "error") {
      result.error_lines.push_back(line);
      continue;
    }
    if (tag != "stimulus" && tag != "final") {
      protocol_error(line, "unexpected server line");
    }
    if (!saw_header) protocol_error(line, "stimulus before session header");
    std::size_t chip = 0, seq = 0;
    core::Stimulus stim;
    std::string marker;
    if (!(is >> chip >> seq >> stim.period >> marker) || marker != "steps") {
      protocol_error(line, "malformed stimulus");
    }
    if (chip >= options.chips) protocol_error(line, "chip out of range");
    std::string token;
    bool in_arm = false;
    while (is >> token) {
      if (token == "arm") {
        in_arm = true;
        continue;
      }
      std::istringstream ts(token);
      if (in_arm) {
        std::size_t pair = 0;
        if (!(ts >> pair)) protocol_error(line, "malformed armed pair");
        stim.armed.push_back(pair);
      } else {
        int step = 0;
        if (!(ts >> step)) protocol_error(line, "malformed step");
        stim.steps.push_back(step);
      }
    }
    std::vector<bool> pass;
    if (tag == "final") {
      pass.assign(1, testers[chip].final_test(stim.period, stim.steps));
    } else {
      pass = testers[chip].apply(stim);
    }
    stream << "response " << chip << ' ' << seq << ' ' << encode_bits(pass)
           << '\n';
    ++result.stimuli_answered;
  }
  throw std::runtime_error(
      "connect: server closed the connection before bye");
}

std::string fetch_status(const std::string& host, std::uint16_t port) {
  return fetch_status(host, port, 0.0);
}

std::string fetch_status(const std::string& host, std::uint16_t port,
                         double timeout_seconds) {
  Socket conn = connect_to(host, port);
  conn.set_io_timeout(timeout_seconds);
  SocketStream stream(std::move(conn));
  // Harmless on a --status-port endpoint: it answers unprompted and never
  // reads, so the same client drives both kinds of status socket.
  stream << "status\n";
  stream.flush();
  std::string line;
  if (!std::getline(stream, line)) {
    throw std::runtime_error("status: server closed without replying");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) {
    throw std::runtime_error("status: empty reply");
  }
  return line;
}

std::string fetch_prometheus(const std::string& host, std::uint16_t port) {
  SocketStream stream(connect_to(host, port));
  stream << "status prometheus\n";
  stream.flush();
  std::string text, line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    text += line;
    text += '\n';
  }
  if (text.empty()) {
    throw std::runtime_error("status: empty prometheus reply");
  }
  return text;
}

}  // namespace effitest::net
