#pragma once
// Loopback tuning client: connects to a net::TuneServeLoop (or any
// effitest-tune-v1 server), simulates its dies locally with the seed base
// from the serve greeting, and answers every stimulus — the tester half of
// `effitest_cli tune --connect=host:port`, tests/net and bench_serve.
//
// The client needs only a core::Problem (netlist + library + variation
// model) to simulate dies — NOT the server's offline artifacts: prediction
// and configuration are server-side, the tester just measures. Because die
// c is sampled stats::Rng(parallel::index_seed(seed, c)) with the seed the
// greeting carried, the report lines the server sends back are
// byte-identical to a local `tune --simulate` run of the same circuit and
// flow options.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace effitest::net {

struct ClientOptions {
  std::size_t chips = 1;
  bool lenient = false;
  /// Requested per-session chip window (hello window=<w>); 0 requests
  /// none. The server may cap it — the cap never changes the reports.
  std::size_t window = 0;
  /// Extra connect attempts (exponential backoff + jitter, see
  /// net::ConnectBackoff) before giving up, so testers ride out balancer
  /// and worker restarts instead of dying on ECONNREFUSED. 0 = one
  /// attempt, fail fast.
  std::size_t connect_retries = 3;
};

struct ClientResult {
  /// `report <chip> ...` lines verbatim, in arrival order. Sort by the
  /// chip id when comparing against another run's completion order.
  std::vector<std::string> report_lines;
  /// `error <chip> <reason>` lines (lenient-mode abandonments).
  std::vector<std::string> error_lines;
  std::size_t stimuli_answered = 0;
  std::uint64_t session_id = 0;
  std::uint64_t seed_base = 0;  ///< from the serve greeting
};

/// Run one whole tuning session against a live server. Throws
/// std::runtime_error on connection failure, a protocol violation, or a
/// server-side `error -` rejection.
[[nodiscard]] ClientResult run_loopback_client(const std::string& host,
                                               std::uint16_t port,
                                               const core::Problem& problem,
                                               const ClientOptions& options);

/// Poll a server's live metrics: send the in-band `status` request (a
/// connection whose first line is `status` instead of a hello) and return
/// the one-line `effitest-status-v1` JSON reply. Also works verbatim
/// against a --status-port endpoint, which sends the line unprompted and
/// ignores the request. Throws std::runtime_error on connection failure
/// or an empty reply.
[[nodiscard]] std::string fetch_status(const std::string& host,
                                       std::uint16_t port);

/// fetch_status with a socket I/O timeout (seconds; <= 0 blocks forever).
/// The fleet registry's prober uses this so one hung worker costs at most
/// the timeout per probe round.
[[nodiscard]] std::string fetch_status(const std::string& host,
                                       std::uint16_t port,
                                       double timeout_seconds);

/// Poll a server's metrics in Prometheus text format: send the in-band
/// `status prometheus` request and return the multi-line exposition-format
/// reply (read to EOF). Throws std::runtime_error on connection failure or
/// an empty reply.
[[nodiscard]] std::string fetch_prometheus(const std::string& host,
                                           std::uint16_t port);

}  // namespace effitest::net
