#pragma once
// TCP serve mode: one TunerService, thousands of concurrent chip-tuning
// sessions (`effitest_cli serve` / bench_serve). DESIGN.md §13.
//
// Wire protocol, layered on io/tune_protocol.hpp line framing:
//
//   client:  hello effitest-tune-v1 chips=<n> [lenient] [window=<w>]
//   server:  serve effitest-tune-v1 session=<id> seed=<base>
//   ...the standard effitest-tune-v1 exchange (header, stimulus/response,
//      report, bye), byte-identical to `effitest_cli tune`...
//
// The greeting carries monte_carlo_seed_base() because a client simulating
// dies cannot recompute it: the base falls out of the offline phase's RNG
// fork order, which only the server ran. With it, client-side die c is
// sampled stats::Rng(parallel::index_seed(seed, c)) — exactly run_flow's
// Monte-Carlo loop — so a loopback client's reports are byte-identical to
// `tune --simulate` for the same circuit and flow options.
//
// Concurrency shape: an accept thread hands connections to a
// net::LoadBalancer of `workers` session threads (worker-priority deques +
// stealing, load_balancer.hpp). Backpressure is accept-pausing: when the
// un-claimed backlog reaches `max_pending` the accept loop stops calling
// accept() and pending connections wait in the kernel listen backlog —
// nobody is busy-rejected. Per-session backpressure reuses the protocol's
// chip_window: at most `chip_window` live TuningSessions per connection,
// responses for unadmitted chips parked in the reorder buffer under the
// same kMaxPendingWindow bound as every other mode.
//
// Drain (SIGTERM): request_drain() is async-signal-safe — it flips an
// atomic and writes one byte to a self-pipe the accept loop polls next to
// the listener. The listener closes immediately, queued and in-flight
// sessions run to completion, then wait() returns. A client that vanishes
// mid-session surfaces as stream EOF inside that one session; sibling
// sessions never notice.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/tuner_service.hpp"
#include "net/load_balancer.hpp"
#include "net/socket.hpp"

namespace effitest::net {

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, read the choice from port()
  std::size_t workers = 8;
  /// Accept-pausing threshold: stop accepting while this many accepted
  /// connections are not yet claimed by a worker.
  std::size_t max_pending = 64;
  /// Per-session chip window forced by the server; 0 honors the client's
  /// `window=` request (or no window at all). A nonzero value caps the
  /// client's request.
  std::size_t chip_window = 0;
  /// hello chips=<n> above this is rejected before any session state is
  /// allocated (an `error - ...` line, then close).
  std::size_t max_chips_per_session = 100000;
  /// Drain automatically after this many accepted sessions; 0 = serve
  /// until request_drain(). The self-terminating mode tests and the CI
  /// smoke step rely on.
  std::size_t max_sessions = 0;
  /// Socket send/receive timeout per session; 0 = block forever. A recv
  /// timeout looks like a disconnected tester (stream EOF).
  double io_timeout_seconds = 0.0;
  int listen_backlog = 512;
};

/// Power-of-two-bucketed latency histogram: bucket i holds durations in
/// [2^i, 2^(i+1)) microseconds. quantile() interpolates at the geometric
/// midpoint of the bucket the rank lands in — 2 significant figures of
/// accuracy for the p50/p90/p99 the serve metrics report, O(1) memory for
/// any session count.
class LatencyHistogram {
 public:
  void record(double seconds);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// q in [0, 1]; 0 when nothing was recorded.
  [[nodiscard]] double quantile(double q) const;

 private:
  static constexpr std::size_t kBuckets = 48;
  std::vector<std::size_t> buckets_ = std::vector<std::size_t>(kBuckets, 0);
  std::size_t count_ = 0;
};

struct ServeMetricsSnapshot {
  std::size_t sessions_accepted = 0;
  std::size_t sessions_completed = 0;
  std::size_t sessions_failed = 0;  ///< bad hello, bad frames, disconnects
  std::size_t active_sessions = 0;
  std::size_t queue_depth = 0;  ///< accepted, not yet claimed by a worker
  std::size_t chips_tuned = 0;
  std::size_t stimuli = 0;
  double wall_seconds = 0.0;  ///< start() to the snapshot (or to drain end)
  double sessions_per_sec = 0.0;
  double latency_p50 = 0.0;  ///< per-session wall seconds
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
};

class TuneServeLoop {
 public:
  TuneServeLoop(const core::TunerService& service, ServeOptions options);
  ~TuneServeLoop();

  TuneServeLoop(const TuneServeLoop&) = delete;
  TuneServeLoop& operator=(const TuneServeLoop&) = delete;

  /// Bind, listen, spawn the accept thread and the worker pool. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Valid after start(); the kernel's choice when options.port was 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return options_.host; }

  /// Async-signal-safe (atomic store + one pipe write): stop accepting,
  /// finish queued and in-flight sessions. Idempotent.
  void request_drain();

  /// Join everything; returns once the last session finished. Idempotent.
  void wait();

  [[nodiscard]] ServeMetricsSnapshot metrics() const;

 private:
  void accept_loop();
  void worker_loop(std::size_t w);
  void serve_connection(Socket socket);

  const core::TunerService* service_;
  ServeOptions options_;
  std::unique_ptr<Listener> listener_;
  std::uint16_t port_ = 0;
  LoadBalancer<Socket> balancer_;
  std::vector<std::thread> threads_;
  Socket drain_pipe_r_;
  Socket drain_pipe_w_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> next_session_id_{0};

  // Metrics, guarded by metrics_mutex_ except the atomics above.
  mutable std::mutex metrics_mutex_;
  std::size_t sessions_accepted_ = 0;
  std::size_t sessions_completed_ = 0;
  std::size_t sessions_failed_ = 0;
  std::size_t active_sessions_ = 0;
  std::size_t chips_tuned_ = 0;
  std::size_t stimuli_ = 0;
  LatencyHistogram latency_;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point drained_at_{};
  bool drained_ = false;
};

}  // namespace effitest::net
