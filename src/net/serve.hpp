#pragma once
// TCP serve mode: one TunerService, thousands of concurrent chip-tuning
// sessions (`effitest_cli serve` / bench_serve). DESIGN.md §13.
//
// Wire protocol, layered on io/tune_protocol.hpp line framing:
//
//   client:  hello effitest-tune-v1 chips=<n> [lenient] [window=<w>]
//   server:  serve effitest-tune-v1 session=<id> seed=<base>
//   ...the standard effitest-tune-v1 exchange (header, stimulus/response,
//      report, bye), byte-identical to `effitest_cli tune`...
//
// A connection whose first line is `status` instead of a hello receives
// one `effitest-status-v1` JSON line (the live metrics registry) and is
// closed — it is counted in serve.status_requests, never in the session
// counters, so polling does not perturb the fleet's numbers. The same
// line is served to any connection on ServeOptions::status_port.
//
// The greeting carries monte_carlo_seed_base() because a client simulating
// dies cannot recompute it: the base falls out of the offline phase's RNG
// fork order, which only the server ran. With it, client-side die c is
// sampled stats::Rng(parallel::index_seed(seed, c)) — exactly run_flow's
// Monte-Carlo loop — so a loopback client's reports are byte-identical to
// `tune --simulate` for the same circuit and flow options.
//
// Concurrency shape: an accept thread hands connections to a
// net::LoadBalancer of `workers` session threads (worker-priority deques +
// stealing, load_balancer.hpp). Backpressure is accept-pausing: when the
// un-claimed backlog reaches `max_pending` the accept loop stops calling
// accept() and pending connections wait in the kernel listen backlog —
// nobody is busy-rejected. Per-session backpressure reuses the protocol's
// chip_window: at most `chip_window` live TuningSessions per connection,
// responses for unadmitted chips parked in the reorder buffer under the
// same kMaxPendingWindow bound as every other mode.
//
// Drain (SIGTERM): request_drain() is async-signal-safe — it flips an
// atomic and writes one byte to a self-pipe the accept loop polls next to
// the listener. The listener closes immediately, queued and in-flight
// sessions run to completion, then wait() returns. A client that vanishes
// mid-session surfaces as stream EOF inside that one session; sibling
// sessions never notice.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/tuner_service.hpp"
#include "net/load_balancer.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace effitest::obs {
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::net {

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, read the choice from port()
  std::size_t workers = 8;
  /// Accept-pausing threshold: stop accepting while this many accepted
  /// connections are not yet claimed by a worker.
  std::size_t max_pending = 64;
  /// Per-session chip window forced by the server; 0 honors the client's
  /// `window=` request (or no window at all). A nonzero value caps the
  /// client's request.
  std::size_t chip_window = 0;
  /// hello chips=<n> above this is rejected before any session state is
  /// allocated (an `error - ...` line, then close).
  std::size_t max_chips_per_session = 100000;
  /// Drain automatically after this many accepted sessions; 0 = serve
  /// until request_drain(). The self-terminating mode tests and the CI
  /// smoke step rely on.
  std::size_t max_sessions = 0;
  /// Socket send/receive timeout per session; 0 = block forever. A recv
  /// timeout looks like a disconnected tester (stream EOF).
  double io_timeout_seconds = 0.0;
  int listen_backlog = 512;
  /// Plaintext status endpoint: every connection to this port immediately
  /// receives one `effitest-status-v1` JSON line and is closed — pollable
  /// with netcat/curl, independent of the tune listener's backpressure
  /// and its max_sessions budget. -1 disables (the default); 0 binds an
  /// ephemeral port, read the choice from status_port().
  int status_port = -1;
  /// Structured event log (session_complete/session_failed here, plus the
  /// per-chip session events via the protocol layer), or nullptr — the
  /// zero-overhead default the perf gates run with.
  obs::StructuredLog* log = nullptr;
};

// Metric names the serve loop registers (obs::MetricsRegistry). Counters
// are monotonic; the latency histogram records per-session wall seconds
// into power-of-two-microsecond buckets (obs::Histogram, the math the old
// LatencyHistogram used). `serve.wall_seconds`/`serve.sessions_per_sec`
// are refreshed at snapshot time and freeze once the loop drains, so the
// end-of-run summary is stable however late it is read.
inline constexpr const char* kMetricSessionsAccepted =
    "serve.sessions_accepted";
inline constexpr const char* kMetricSessionsCompleted =
    "serve.sessions_completed";
inline constexpr const char* kMetricSessionsFailed = "serve.sessions_failed";
inline constexpr const char* kMetricChipsTuned = "serve.chips_tuned";
inline constexpr const char* kMetricStimuli = "serve.stimuli";
inline constexpr const char* kMetricStatusRequests = "serve.status_requests";
inline constexpr const char* kMetricActiveSessions = "serve.active_sessions";
inline constexpr const char* kMetricQueueDepth = "serve.queue_depth";
inline constexpr const char* kMetricWallSeconds = "serve.wall_seconds";
inline constexpr const char* kMetricSessionsPerSec = "serve.sessions_per_sec";
inline constexpr const char* kMetricSessionLatency =
    "serve.session_latency_us";

class TuneServeLoop {
 public:
  TuneServeLoop(const core::TunerService& service, ServeOptions options);
  ~TuneServeLoop();

  TuneServeLoop(const TuneServeLoop&) = delete;
  TuneServeLoop& operator=(const TuneServeLoop&) = delete;

  /// Bind, listen, spawn the accept thread and the worker pool. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Valid after start(); the kernel's choice when options.port was 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return options_.host; }
  /// Valid after start() when ServeOptions::status_port >= 0; 0 otherwise.
  [[nodiscard]] std::uint16_t status_port() const { return status_port_; }

  /// Async-signal-safe (atomic store + one pipe write): stop accepting,
  /// finish queued and in-flight sessions. Idempotent.
  void request_drain();

  /// Join everything; returns once the last session finished. Idempotent.
  void wait();

  /// Registry snapshot with the wall-clock gauges refreshed. The counter
  /// and histogram entries are exactly what a concurrent `status` poll
  /// sees: a poll taken after the last session finished matches the
  /// end-of-run snapshot on every monotonic metric.
  [[nodiscard]] obs::RegistrySnapshot metrics() const;

  /// metrics() rendered as one `effitest-status-v1` JSON line — what the
  /// in-band `status` request and the --status-port endpoint return.
  [[nodiscard]] std::string status_json() const;

 private:
  void accept_loop();
  void worker_loop(std::size_t w);
  void serve_connection(Socket socket);
  void answer_status_connection();

  const core::TunerService* service_;
  ServeOptions options_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<Listener> status_listener_;
  std::uint16_t port_ = 0;
  std::uint16_t status_port_ = 0;
  LoadBalancer<Socket> balancer_;
  std::vector<std::thread> threads_;
  Socket drain_pipe_r_;
  Socket drain_pipe_w_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> next_session_id_{0};

  // Instruments live in the registry (lock-free on the hot path); the
  // cached pointers stay valid for the loop's lifetime. The registry is
  // mutable so metrics() const can refresh the wall-clock gauges.
  mutable obs::MetricsRegistry registry_;
  obs::Counter* accepted_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* chips_tuned_;
  obs::Counter* stimuli_;
  obs::Counter* status_requests_;
  obs::Gauge* active_sessions_;
  obs::Gauge* wall_seconds_;
  obs::Gauge* sessions_per_sec_;
  obs::Histogram* latency_;

  // Wall-clock epoch, guarded by time_mutex_ (not on the session path).
  mutable std::mutex time_mutex_;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point drained_at_{};
  bool drained_ = false;
};

}  // namespace effitest::net
