#include "net/serve.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/tune_protocol.hpp"
#include "obs/log.hpp"

namespace effitest::net {

namespace {

/// Parsed `hello effitest-tune-v1 chips=<n> [lenient] [window=<w>]`.
/// `error` non-empty on a malformed or out-of-policy hello.
struct Hello {
  std::size_t chips = 0;
  std::size_t window = 0;
  bool lenient = false;
  std::string error;
};

Hello parse_hello(const std::string& line, const ServeOptions& options) {
  Hello h;
  std::istringstream is(line);
  std::string tag, version, token;
  if (!(is >> tag >> version) || tag != "hello" ||
      version != "effitest-tune-v1") {
    h.error = "expected \"hello effitest-tune-v1 chips=<n>\"";
    return h;
  }
  bool saw_chips = false;
  while (is >> token) {
    if (token == "lenient") {
      h.lenient = true;
      continue;
    }
    const auto eq = token.find('=');
    const std::string key = token.substr(0, eq);
    std::size_t value = 0;
    if (eq != std::string::npos) {
      std::istringstream vs(token.substr(eq + 1));
      if (!(vs >> value) || !vs.eof()) {
        h.error = "malformed hello option \"" + token + "\"";
        return h;
      }
    }
    if (key == "chips" && eq != std::string::npos) {
      h.chips = value;
      saw_chips = true;
    } else if (key == "window" && eq != std::string::npos) {
      h.window = value;
    } else {
      h.error = "unknown hello option \"" + token + "\"";
      return h;
    }
  }
  if (!saw_chips || h.chips == 0) {
    h.error = "hello must carry chips=<n> with n >= 1";
    return h;
  }
  if (h.chips > options.max_chips_per_session) {
    h.error = "chips=" + std::to_string(h.chips) +
              " exceeds this server's per-session limit of " +
              std::to_string(options.max_chips_per_session);
    return h;
  }
  // The server-side window caps the client's request; a client that asked
  // for none gets the server's default.
  if (options.chip_window != 0) {
    h.window = h.window == 0 ? options.chip_window
                             : std::min(h.window, options.chip_window);
  }
  return h;
}

}  // namespace

TuneServeLoop::TuneServeLoop(const core::TunerService& service,
                             ServeOptions options)
    : service_(&service),
      options_(std::move(options)),
      balancer_(options_.workers == 0 ? 1 : options_.workers),
      accepted_(&registry_.counter(kMetricSessionsAccepted)),
      completed_(&registry_.counter(kMetricSessionsCompleted)),
      failed_(&registry_.counter(kMetricSessionsFailed)),
      chips_tuned_(&registry_.counter(kMetricChipsTuned)),
      stimuli_(&registry_.counter(kMetricStimuli)),
      status_requests_(&registry_.counter(kMetricStatusRequests)),
      active_sessions_(&registry_.gauge(kMetricActiveSessions)),
      wall_seconds_(&registry_.gauge(kMetricWallSeconds)),
      sessions_per_sec_(&registry_.gauge(kMetricSessionsPerSec)),
      latency_(&registry_.histogram(kMetricSessionLatency)) {
  // Bound before any thread exists (the Gauge::bind contract).
  registry_.gauge(kMetricQueueDepth).bind([this] {
    return static_cast<double>(balancer_.queued());
  });
}

TuneServeLoop::~TuneServeLoop() {
  request_drain();
  wait();
}

void TuneServeLoop::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("serve: start() called twice");
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("serve: pipe failed");
  }
  drain_pipe_r_ = Socket(pipe_fds[0]);
  drain_pipe_w_ = Socket(pipe_fds[1]);
  listener_ = std::make_unique<Listener>(options_.host, options_.port,
                                         options_.listen_backlog);
  port_ = listener_->port();
  if (options_.status_port >= 0) {
    status_listener_ = std::make_unique<Listener>(
        options_.host, static_cast<std::uint16_t>(options_.status_port),
        options_.listen_backlog);
    status_port_ = status_listener_->port();
  }
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    started_at_ = std::chrono::steady_clock::now();
  }
  threads_.reserve(balancer_.workers() + 1);
  threads_.emplace_back([this] { accept_loop(); });
  for (std::size_t w = 0; w < balancer_.workers(); ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void TuneServeLoop::request_drain() {
  // Called from signal handlers: atomic store + one write(2), nothing else.
  if (draining_.exchange(true)) return;
  if (drain_pipe_w_.valid()) {
    const char byte = 'd';
    (void)!::write(drain_pipe_w_.fd(), &byte, 1);
  }
}

void TuneServeLoop::wait() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  std::lock_guard<std::mutex> lock(time_mutex_);
  if (!drained_ && started_.load()) {
    drained_ = true;
    drained_at_ = std::chrono::steady_clock::now();
  }
}

void TuneServeLoop::accept_loop() {
  std::size_t accepted = 0;
  while (!draining_.load(std::memory_order_relaxed)) {
    // Backpressure: with the backlog full, stop watching the tune listener
    // and re-check the queue on a short tick — pending connections sit in
    // the kernel's listen queue, nobody is rejected. The status listener
    // stays in the poll set even then: observability must keep answering
    // exactly when the fleet is saturated.
    const bool paused = balancer_.queued() >= options_.max_pending;
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {drain_pipe_r_.fd(), POLLIN, 0};
    std::size_t tune_idx = 0;
    if (!paused) {
      tune_idx = nfds;
      fds[nfds++] = {listener_->fd(), POLLIN, 0};
    }
    std::size_t status_idx = 0;
    if (status_listener_ != nullptr) {
      status_idx = nfds;
      fds[nfds++] = {status_listener_->fd(), POLLIN, 0};
    }
    const int n = ::poll(fds, nfds, paused ? 50 : 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // drain requested
    if (status_listener_ != nullptr && status_idx != 0 &&
        (fds[status_idx].revents & POLLIN) != 0) {
      answer_status_connection();
    }
    if (paused || n == 0 || (fds[tune_idx].revents & POLLIN) == 0) continue;
    Socket conn = listener_->accept();
    if (!conn.valid()) continue;
    conn.set_io_timeout(options_.io_timeout_seconds);
    balancer_.dispatch(std::move(conn));
    ++accepted;
    if (options_.max_sessions != 0 && accepted >= options_.max_sessions) {
      request_drain();
      break;
    }
  }
  // Stop the kernel from queueing more connections, then let the workers
  // finish everything already accepted.
  listener_->close();
  if (status_listener_ != nullptr) status_listener_->close();
  balancer_.close();
}

void TuneServeLoop::answer_status_connection() {
  // Runs on the accept thread: a short send timeout keeps one stalled
  // poller from ever blocking accepts for long.
  Socket conn = status_listener_->accept();
  if (!conn.valid()) return;
  conn.set_io_timeout(1.0);
  status_requests_->inc();  // before rendering, so the reply includes itself
  const std::string line = status_json() + "\n";
  SocketStream stream(std::move(conn));
  stream << line;
  stream.flush();
  // Drain whatever the poller sent (fetch_status writes "status\n" to
  // work against both kinds of status socket) before closing: closing
  // with unread input makes TCP answer the client's bytes with an RST,
  // which can destroy the reply still sitting in its receive buffer. The
  // 1s io timeout above bounds a poller that neither writes nor closes.
  std::string discard;
  (void)std::getline(stream, discard);
}

void TuneServeLoop::worker_loop(std::size_t w) {
  while (auto task = balancer_.next(w)) {
    serve_connection(std::move(*task));
    balancer_.task_done(w);
  }
}

void TuneServeLoop::serve_connection(Socket socket) {
  const auto session_start = std::chrono::steady_clock::now();
  SocketStream stream(std::move(socket));
  std::string line;
  Hello hello;
  bool got_line = false;
  if (std::getline(stream, line)) {
    got_line = true;
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  // An in-band status poll: answer and close without touching the session
  // counters, so watching a fleet does not change what it reports (the
  // poll itself shows up in serve.status_requests — incremented before
  // rendering, so every reply already includes itself).
  if (got_line && (line == "status" || line == "status prometheus")) {
    status_requests_->inc();
    if (line == "status") {
      stream << status_json() << '\n';
    } else {
      stream << obs::render_prometheus_text(metrics());
    }
    stream.flush();
    return;
  }
  accepted_->inc();
  active_sessions_->add(1.0);
  if (!got_line) {
    hello.error = "connection closed before hello";
  } else {
    hello = parse_hello(line, options_);
  }
  bool completed = false;
  std::uint64_t id = 0;
  std::size_t chips = 0;
  std::string failure = hello.error;
  if (hello.error.empty()) {
    id = next_session_id_.fetch_add(1);
    stream << "serve effitest-tune-v1 session=" << id
           << " seed=" << service_->monte_carlo_seed_base() << '\n';
    stream.flush();
    io::TuneServerOptions topts;
    topts.lenient = hello.lenient;
    topts.chip_window = hello.window;
    topts.live_stimuli = stimuli_;
    topts.log = options_.log;
    io::TuneServer server(*service_, hello.chips, topts);
    try {
      // Stimuli are counted live through topts.live_stimuli as each line
      // is emitted; the result total is not re-added here.
      (void)server.run(stream, stream);
      stream.flush();  // the trailing report/bye lines have no read after
      completed = true;
      chips = hello.chips;
    } catch (const std::exception& e) {
      // Strict-mode bad frame or a vanished client: this session dies, its
      // siblings never notice. Best effort notice to a peer still there.
      failure = e.what();
      stream << "error - " << e.what() << '\n';
      stream.flush();
    }
  } else {
    stream << "error - " << hello.error << '\n';
    stream.flush();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session_start)
          .count();
  active_sessions_->add(-1.0);
  if (completed) {
    completed_->inc();
    chips_tuned_->inc(chips);
    latency_->record(seconds);
    if (options_.log != nullptr) {
      options_.log->emit(
          "serve", "session_complete",
          {obs::LogField::u64("session", id),
           obs::LogField::u64("chips", chips),
           obs::LogField::f64("seconds", seconds)});
    }
  } else {
    failed_->inc();
    if (options_.log != nullptr) {
      options_.log->emit("serve", "session_failed",
                         {obs::LogField::str("reason", failure),
                          obs::LogField::f64("seconds", seconds)});
    }
  }
}

obs::RegistrySnapshot TuneServeLoop::metrics() const {
  // Refresh the wall-clock gauges at snapshot time. After drain they
  // freeze at drained_at_, so late reads of the end-of-run summary are
  // stable; counters and histograms are live atomics either way.
  double wall = 0.0;
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    if (started_at_.time_since_epoch().count() != 0) {
      const auto end =
          drained_ ? drained_at_ : std::chrono::steady_clock::now();
      wall = std::chrono::duration<double>(end - started_at_).count();
    }
  }
  wall_seconds_->set(wall);
  sessions_per_sec_->set(
      wall > 0.0 ? static_cast<double>(completed_->value()) / wall : 0.0);
  return registry_.snapshot();
}

std::string TuneServeLoop::status_json() const {
  return obs::render_status_json(metrics());
}

}  // namespace effitest::net
