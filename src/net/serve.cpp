#include "net/serve.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/tune_protocol.hpp"

namespace effitest::net {

namespace {

/// Parsed `hello effitest-tune-v1 chips=<n> [lenient] [window=<w>]`.
/// `error` non-empty on a malformed or out-of-policy hello.
struct Hello {
  std::size_t chips = 0;
  std::size_t window = 0;
  bool lenient = false;
  std::string error;
};

Hello parse_hello(const std::string& line, const ServeOptions& options) {
  Hello h;
  std::istringstream is(line);
  std::string tag, version, token;
  if (!(is >> tag >> version) || tag != "hello" ||
      version != "effitest-tune-v1") {
    h.error = "expected \"hello effitest-tune-v1 chips=<n>\"";
    return h;
  }
  bool saw_chips = false;
  while (is >> token) {
    if (token == "lenient") {
      h.lenient = true;
      continue;
    }
    const auto eq = token.find('=');
    const std::string key = token.substr(0, eq);
    std::size_t value = 0;
    if (eq != std::string::npos) {
      std::istringstream vs(token.substr(eq + 1));
      if (!(vs >> value) || !vs.eof()) {
        h.error = "malformed hello option \"" + token + "\"";
        return h;
      }
    }
    if (key == "chips" && eq != std::string::npos) {
      h.chips = value;
      saw_chips = true;
    } else if (key == "window" && eq != std::string::npos) {
      h.window = value;
    } else {
      h.error = "unknown hello option \"" + token + "\"";
      return h;
    }
  }
  if (!saw_chips || h.chips == 0) {
    h.error = "hello must carry chips=<n> with n >= 1";
    return h;
  }
  if (h.chips > options.max_chips_per_session) {
    h.error = "chips=" + std::to_string(h.chips) +
              " exceeds this server's per-session limit of " +
              std::to_string(options.max_chips_per_session);
    return h;
  }
  // The server-side window caps the client's request; a client that asked
  // for none gets the server's default.
  if (options.chip_window != 0) {
    h.window = h.window == 0 ? options.chip_window
                             : std::min(h.window, options.chip_window);
  }
  return h;
}

}  // namespace

void LatencyHistogram::record(double seconds) {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<std::size_t>(std::log2(us));
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
  ++count_;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; walk the cumulative counts.
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(count_))));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Geometric midpoint of [2^b, 2^(b+1)) microseconds, in seconds.
      return std::exp2(static_cast<double>(b) + 0.5) * 1e-6;
    }
  }
  return std::exp2(static_cast<double>(kBuckets)) * 1e-6;
}

TuneServeLoop::TuneServeLoop(const core::TunerService& service,
                             ServeOptions options)
    : service_(&service),
      options_(std::move(options)),
      balancer_(options_.workers == 0 ? 1 : options_.workers) {}

TuneServeLoop::~TuneServeLoop() {
  request_drain();
  wait();
}

void TuneServeLoop::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("serve: start() called twice");
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("serve: pipe failed");
  }
  drain_pipe_r_ = Socket(pipe_fds[0]);
  drain_pipe_w_ = Socket(pipe_fds[1]);
  listener_ = std::make_unique<Listener>(options_.host, options_.port,
                                         options_.listen_backlog);
  port_ = listener_->port();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    started_at_ = std::chrono::steady_clock::now();
  }
  threads_.reserve(balancer_.workers() + 1);
  threads_.emplace_back([this] { accept_loop(); });
  for (std::size_t w = 0; w < balancer_.workers(); ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void TuneServeLoop::request_drain() {
  // Called from signal handlers: atomic store + one write(2), nothing else.
  if (draining_.exchange(true)) return;
  if (drain_pipe_w_.valid()) {
    const char byte = 'd';
    (void)!::write(drain_pipe_w_.fd(), &byte, 1);
  }
}

void TuneServeLoop::wait() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (!drained_ && started_.load()) {
    drained_ = true;
    drained_at_ = std::chrono::steady_clock::now();
  }
}

void TuneServeLoop::accept_loop() {
  std::size_t accepted = 0;
  while (!draining_.load(std::memory_order_relaxed)) {
    // Backpressure: with the backlog full, poll only the drain pipe and
    // re-check the queue on a short tick — pending connections sit in the
    // kernel's listen queue, nobody is rejected.
    const bool paused = balancer_.queued() >= options_.max_pending;
    pollfd fds[2];
    fds[0] = {drain_pipe_r_.fd(), POLLIN, 0};
    fds[1] = {listener_->fd(), POLLIN, 0};
    const int n = ::poll(fds, paused ? 1 : 2, paused ? 50 : 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // drain requested
    if (paused || n == 0 || (fds[1].revents & POLLIN) == 0) continue;
    Socket conn = listener_->accept();
    if (!conn.valid()) continue;
    conn.set_io_timeout(options_.io_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++sessions_accepted_;
    }
    balancer_.dispatch(std::move(conn));
    ++accepted;
    if (options_.max_sessions != 0 && accepted >= options_.max_sessions) {
      request_drain();
      break;
    }
  }
  // Stop the kernel from queueing more connections, then let the workers
  // finish everything already accepted.
  listener_->close();
  balancer_.close();
}

void TuneServeLoop::worker_loop(std::size_t w) {
  while (auto task = balancer_.next(w)) {
    serve_connection(std::move(*task));
    balancer_.task_done(w);
  }
}

void TuneServeLoop::serve_connection(Socket socket) {
  const auto session_start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++active_sessions_;
  }
  SocketStream stream(std::move(socket));
  std::string line;
  Hello hello;
  if (!std::getline(stream, line)) {
    hello.error = "connection closed before hello";
  } else {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    hello = parse_hello(line, options_);
  }
  bool completed = false;
  std::size_t chips = 0;
  std::size_t stimuli = 0;
  if (hello.error.empty()) {
    const std::uint64_t id = next_session_id_.fetch_add(1);
    stream << "serve effitest-tune-v1 session=" << id
           << " seed=" << service_->monte_carlo_seed_base() << '\n';
    stream.flush();
    io::TuneServerOptions topts;
    topts.lenient = hello.lenient;
    topts.chip_window = hello.window;
    io::TuneServer server(*service_, hello.chips, topts);
    try {
      const io::TuneServerResult result = server.run(stream, stream);
      stream.flush();  // the trailing report/bye lines have no read after
      completed = true;
      chips = hello.chips;
      stimuli = result.stimuli;
    } catch (const std::exception& e) {
      // Strict-mode bad frame or a vanished client: this session dies, its
      // siblings never notice. Best effort notice to a peer still there.
      stream << "error - " << e.what() << '\n';
      stream.flush();
    }
  } else {
    stream << "error - " << hello.error << '\n';
    stream.flush();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session_start)
          .count();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  --active_sessions_;
  if (completed) {
    ++sessions_completed_;
    chips_tuned_ += chips;
    stimuli_ += stimuli;
    latency_.record(seconds);
  } else {
    ++sessions_failed_;
  }
}

ServeMetricsSnapshot TuneServeLoop::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ServeMetricsSnapshot snap;
  snap.sessions_accepted = sessions_accepted_;
  snap.sessions_completed = sessions_completed_;
  snap.sessions_failed = sessions_failed_;
  snap.active_sessions = active_sessions_;
  snap.queue_depth = balancer_.queued();
  snap.chips_tuned = chips_tuned_;
  snap.stimuli = stimuli_;
  const auto end =
      drained_ ? drained_at_ : std::chrono::steady_clock::now();
  snap.wall_seconds = std::chrono::duration<double>(end - started_at_).count();
  snap.sessions_per_sec =
      snap.wall_seconds > 0.0
          ? static_cast<double>(sessions_completed_) / snap.wall_seconds
          : 0.0;
  snap.latency_p50 = latency_.quantile(0.50);
  snap.latency_p90 = latency_.quantile(0.90);
  snap.latency_p99 = latency_.quantile(0.99);
  return snap;
}

}  // namespace effitest::net
