#pragma once
// POSIX TCP plumbing for the networked tuning fleet (net/serve.hpp): an
// RAII socket, an IPv4 listener, a connector, and SocketStream — a
// std::iostream over a connected socket so the line-oriented tune protocol
// (io/tune_protocol.hpp) runs over TCP unchanged.
//
// SocketStream's streambuf flushes its put area before every refill of the
// get area, so the request/response pattern of the protocol — write
// stimulus lines, then block reading the next response — never deadlocks
// on unflushed output: a plain `stream << line << '\n'` followed by
// `std::getline(stream, ...)` pushes the line onto the wire first. Sends
// use MSG_NOSIGNAL so a peer that disappeared mid-session surfaces as
// stream failure (badbit/eof), never as a process-killing SIGPIPE.
//
// All of this is deliberately IPv4-loopback-grade: the serve mode binds
// 127.0.0.1 by default and the bench drives in-process clients. Nothing
// here pretends to be a general networking library.

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <vector>

namespace effitest::net {

/// Move-only owner of a file descriptor (socket or pipe end).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release();
  void close();

  /// SO_RCVTIMEO + SO_SNDTIMEO; 0 disables (block forever). A receive
  /// timeout surfaces as end-of-stream on a SocketStream — the protocol
  /// treats it exactly like a disconnected tester.
  void set_io_timeout(double seconds);

 private:
  int fd_ = -1;
};

/// Buffered std::streambuf over a connected socket (see header comment for
/// the flush-before-read contract).
class SocketStreambuf final : public std::streambuf {
 public:
  explicit SocketStreambuf(Socket socket);
  /// Best-effort flush: the protocol's last lines (`report`, `bye`) are
  /// written right before the session object dies, with no read following
  /// to trigger the flush-before-read path.
  ~SocketStreambuf() override;

  [[nodiscard]] const Socket& socket() const { return socket_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  [[nodiscard]] bool flush_put_area();

  Socket socket_;
  std::vector<char> in_;
  std::vector<char> out_;
};

/// The iostream the tune protocol runs over: pass one object as both the
/// `in` and `out` of io::TuneServer::run.
class SocketStream final : public std::iostream {
 public:
  explicit SocketStream(Socket socket)
      : std::iostream(nullptr), buf_(std::move(socket)) {
    rdbuf(&buf_);
  }

  [[nodiscard]] const Socket& socket() const { return buf_.socket(); }

 private:
  SocketStreambuf buf_;
};

/// IPv4 listening socket. `port` 0 binds an ephemeral port; `port()`
/// reports the one the kernel chose. Throws std::runtime_error when the
/// address cannot be bound.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port, int backlog);

  [[nodiscard]] int fd() const { return socket_.fd(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return host_; }

  /// Accept one pending connection (the caller has already polled the fd
  /// readable). Returns an invalid Socket on transient failure.
  [[nodiscard]] Socket accept();

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// Blocking IPv4 connect. Throws std::runtime_error on failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

/// Retry policy for connect_with_backoff: `retries` extra attempts after
/// the first, sleeping base * 2^attempt (capped at max) scaled by a
/// uniform jitter factor in [0.5, 1.0] between attempts. The jitter keeps
/// a fleet of testers restarted together from reconnecting in lockstep.
struct ConnectBackoff {
  std::size_t retries = 3;
  double base_seconds = 0.1;
  double max_seconds = 2.0;
};

/// connect_to, but riding out ECONNREFUSED during balancer/worker
/// restarts: on failure sleep per the backoff policy and try again, up to
/// `retries` extra attempts. Throws the last failure when all attempts are
/// spent.
[[nodiscard]] Socket connect_with_backoff(const std::string& host,
                                          std::uint16_t port,
                                          const ConnectBackoff& backoff = {});

/// Half-close helpers (shutdown(2) wrappers; no-ops on an invalid socket).
/// The fleet balancer uses them to pop its peer relay thread out of a
/// blocking recv without racing the fd's lifetime: shutdown leaves the fd
/// open, so the owning Socket's close stays single-threaded.
void shutdown_read(const Socket& socket);
void shutdown_write(const Socket& socket);

}  // namespace effitest::net
