#pragma once
// Worker-priority dispatch queue for the serve loop (net/serve.hpp).
//
// Each worker owns a deque; dispatch() pushes a task onto the deque of the
// least-loaded worker, where load = tasks queued for it + the task it is
// currently running. A worker pops from the front of its own deque and,
// when that is empty, steals from the BACK of the most-loaded sibling, so
// one long tuning session never strands the connections queued behind it
// while other workers sit idle.
//
// The accept loop reads queued() for backpressure: when the total backlog
// reaches ServeOptions::max_pending it simply stops accepting — pending
// connections wait in the kernel's listen backlog instead of a user-space
// queue, so no client is ever busy-rejected (a requirement for driving
// hundreds of concurrent loopback sessions through a handful of workers).
//
// One mutex guards all deques. At session granularity (a task is a whole
// TCP connection, served for many milliseconds) the contention is
// irrelevant and the single lock keeps close()/steal semantics trivially
// race-free — this is not a work-stealing scheduler for microtasks; that
// lives in parallel/thread_pool.hpp.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace effitest::net {

template <typename Task>
class LoadBalancer {
 public:
  explicit LoadBalancer(std::size_t workers)
      : queues_(workers == 0 ? 1 : workers),
        running_(queues_.size(), false) {}

  [[nodiscard]] std::size_t workers() const { return queues_.size(); }

  /// Enqueue for the least-loaded worker. Returns false (task dropped)
  /// after close().
  bool dispatch(Task task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      std::size_t best = 0;
      std::size_t best_load = load_locked(0);
      for (std::size_t w = 1; w < queues_.size(); ++w) {
        const std::size_t load = load_locked(w);
        if (load < best_load) {
          best = w;
          best_load = load;
        }
      }
      queues_[best].push_back(std::move(task));
      ++queued_;
    }
    ready_.notify_all();
    return true;
  }

  /// Blocking pop for worker `w`: own queue first, then steal from the
  /// most-loaded sibling. Empty optional = closed and fully drained; the
  /// worker should exit. Pair the returned task with task_done(w).
  [[nodiscard]] std::optional<Task> next(std::size_t w) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (!queues_[w].empty()) {
        Task task = std::move(queues_[w].front());
        queues_[w].pop_front();
        return claim_locked(w, std::move(task));
      }
      std::size_t victim = queues_.size();
      std::size_t victim_size = 0;
      for (std::size_t v = 0; v < queues_.size(); ++v) {
        if (queues_[v].size() > victim_size) {
          victim = v;
          victim_size = queues_[v].size();
        }
      }
      if (victim < queues_.size()) {
        Task task = std::move(queues_[victim].back());
        queues_[victim].pop_back();
        return claim_locked(w, std::move(task));
      }
      if (closed_) return std::nullopt;
      ready_.wait(lock);
    }
  }

  void task_done(std::size_t w) {
    std::lock_guard<std::mutex> lock(mutex_);
    running_[w] = false;
  }

  /// No further dispatches; blocked workers drain the backlog then exit.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Tasks accepted but not yet claimed by a worker (the accept loop's
  /// backpressure signal and ServeMetrics' queue depth).
  [[nodiscard]] std::size_t queued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
  }

 private:
  [[nodiscard]] std::size_t load_locked(std::size_t w) const {
    return queues_[w].size() + (running_[w] ? 1 : 0);
  }

  [[nodiscard]] std::optional<Task> claim_locked(std::size_t w, Task task) {
    --queued_;
    running_[w] = true;
    return std::optional<Task>(std::move(task));
  }

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<std::deque<Task>> queues_;
  std::vector<bool> running_;  ///< guarded by mutex_ (not atomic-per-bit)
  std::size_t queued_ = 0;
  bool closed_ = false;
};

}  // namespace effitest::net
