#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

namespace effitest::net {

namespace {

constexpr std::size_t kBufBytes = 1 << 16;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in ipv4_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: not an IPv4 address: \"" + host + "\"");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int Socket::release() { return std::exchange(fd_, -1); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_io_timeout(double seconds) {
  if (fd_ < 0 || seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

SocketStreambuf::SocketStreambuf(Socket socket)
    : socket_(std::move(socket)), in_(kBufBytes), out_(kBufBytes) {
  setg(in_.data(), in_.data(), in_.data());
  setp(out_.data(), out_.data() + out_.size());
}

SocketStreambuf::~SocketStreambuf() { (void)flush_put_area(); }

bool SocketStreambuf::flush_put_area() {
  const char* p = pbase();
  const char* end = pptr();
  while (p < end) {
    const ssize_t n = ::send(socket_.fd(), p, static_cast<std::size_t>(end - p),
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET) or send timeout
    }
    p += n;
  }
  setp(out_.data(), out_.data() + out_.size());
  return true;
}

SocketStreambuf::int_type SocketStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // The protocol is strictly request/response: about to block on the peer,
  // so everything written must be on the wire first.
  if (!flush_put_area()) return traits_type::eof();
  ssize_t n = 0;
  do {
    n = ::recv(socket_.fd(), in_.data(), in_.size(), 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();  // closed, reset, or recv timeout
  setg(in_.data(), in_.data(), in_.data() + n);
  return traits_type::to_int_type(*gptr());
}

SocketStreambuf::int_type SocketStreambuf::overflow(int_type ch) {
  if (!flush_put_area()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int SocketStreambuf::sync() { return flush_put_area() ? 0 : -1; }

Listener::Listener(const std::string& host, std::uint16_t port, int backlog)
    : host_(host) {
  const sockaddr_in addr = ipv4_address(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("net: socket");
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("net: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("net: listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("net: getsockname");
  }
  port_ = ntohs(bound.sin_port);
  socket_ = std::move(s);
}

Socket Listener::accept() {
  int fd = -1;
  do {
    fd = ::accept4(socket_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  return Socket(fd);
}

Socket connect_with_backoff(const std::string& host, std::uint16_t port,
                            const ConnectBackoff& backoff) {
  std::mt19937 jitter_rng{std::random_device{}()};
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return connect_to(host, port);
    } catch (const std::exception&) {
      if (attempt >= backoff.retries) throw;
    }
    const double delay =
        std::min(backoff.base_seconds * std::exp2(static_cast<double>(attempt)),
                 backoff.max_seconds) *
        jitter(jitter_rng);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

void shutdown_read(const Socket& socket) {
  if (socket.valid()) (void)::shutdown(socket.fd(), SHUT_RD);
}

void shutdown_write(const Socket& socket) {
  if (socket.valid()) (void)::shutdown(socket.fd(), SHUT_WR);
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = ipv4_address(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("net: socket");
  int rc = 0;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw_errno("net: connect " + host + ":" + std::to_string(port));
  }
  return s;
}

}  // namespace effitest::net
